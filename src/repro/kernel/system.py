"""A bootable simulated node: clock + CPUs + scheduler + tracepoints.

:class:`KernelSystem` wires the kernel substrate together and provides
the measurement utilities every experiment uses: run-to-completion for
compute jobs (execution-time slowdown), windowed measurement for server
loops (throughput, CPI, utilization), and counter snapshots for the
software/hardware event analyses of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.kernel.cpu import CpuTopology, InterferenceModel
from repro.kernel.events import Simulator
from repro.kernel.scheduler import Scheduler, SchedulerConfig
from repro.kernel.syscalls import SyscallTable
from repro.kernel.task import Process, ThreadState
from repro.kernel.tracepoints import TracepointRegistry
from repro.util.rng import RngFactory
from repro.util.units import MIB, SEC


@dataclass
class SystemConfig:
    """Node hardware shape and base parameters."""

    sockets: int = 1
    cores_per_socket: int = 4
    threads_per_core: int = 2
    memory_mb: int = 64 * 1024
    cpu_freq_ghz: float = 2.9
    seed: int = 42
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    interference: InterferenceModel = field(default_factory=InterferenceModel)

    @classmethod
    def icelake_node(cls, seed: int = 42) -> "SystemConfig":
        """The paper's offline evaluation node (2x 32-core Xeon 8369B)."""
        return cls(
            sockets=2, cores_per_socket=32, threads_per_core=2,
            memory_mb=1024 * 1024, cpu_freq_ghz=2.9, seed=seed,
        )

    @classmethod
    def skylake_node(cls, seed: int = 42) -> "SystemConfig":
        """The paper's online evaluation node (2x 24-core Xeon 8163)."""
        return cls(
            sockets=2, cores_per_socket=24, threads_per_core=2,
            memory_mb=384 * 1024, cpu_freq_ghz=2.5, seed=seed,
        )

    @classmethod
    def small_node(cls, logical_cores: int = 8, seed: int = 42) -> "SystemConfig":
        """A reduced node for fast experiments (default 4 phys x 2 HT)."""
        if logical_cores % 2:
            raise ValueError("logical core count must be even (HT pairs)")
        return cls(
            sockets=1, cores_per_socket=logical_cores // 2,
            threads_per_core=2, memory_mb=64 * 1024, seed=seed,
        )


@dataclass
class CounterSnapshot:
    """Cumulative node counters at one instant (Figure 4's raw material)."""

    time_ns: int
    context_switches: int
    migrations: int
    kernel_ns: int
    busy_ns: int
    syscalls: int
    work_done: float
    requests: Dict[int, int]  # pid -> requests_completed

    def delta(self, later: "CounterSnapshot") -> "CounterDelta":
        """Counter differences between this snapshot and ``later``."""
        return CounterDelta(
            window_ns=later.time_ns - self.time_ns,
            context_switches=later.context_switches - self.context_switches,
            migrations=later.migrations - self.migrations,
            kernel_ns=later.kernel_ns - self.kernel_ns,
            busy_ns=later.busy_ns - self.busy_ns,
            syscalls=later.syscalls - self.syscalls,
            work_done=later.work_done - self.work_done,
            requests={
                pid: later.requests.get(pid, 0) - count
                for pid, count in self.requests.items()
            },
        )


@dataclass
class CounterDelta:
    """Counter differences over a measurement window."""

    window_ns: int
    context_switches: int
    migrations: int
    kernel_ns: int
    busy_ns: int
    syscalls: int
    work_done: float
    requests: Dict[int, int]

    @property
    def throughput_rps(self) -> float:
        """Total requests per second across all server processes."""
        if self.window_ns <= 0:
            return 0.0
        return sum(self.requests.values()) / (self.window_ns / SEC)


@dataclass
class RunSummary:
    """Per-process results of a run."""

    completion_ns: Dict[str, int]
    cpu_ns: Dict[str, int]
    work_done: Dict[str, float]
    cpi: Dict[str, float]
    utilization: float


class KernelSystem:
    """One simulated node, ready to spawn workloads onto."""

    def __init__(self, config: Optional[SystemConfig] = None):
        self.config = config or SystemConfig()
        self.sim = Simulator()
        self.rng = RngFactory(self.config.seed)
        self.topology = CpuTopology(
            sockets=self.config.sockets,
            cores_per_socket=self.config.cores_per_socket,
            threads_per_core=self.config.threads_per_core,
            interference=self.config.interference,
        )
        self.tracepoints = TracepointRegistry()
        self.syscalls = SyscallTable()
        self.scheduler = Scheduler(
            sim=self.sim,
            topology=self.topology,
            tracepoints=self.tracepoints,
            syscalls=self.syscalls,
            rng=self.rng,
            config=self.config.scheduler,
        )
        self.processes: List[Process] = []
        #: memory occupied by tracing facilities (bytes), for Fig 11/17
        self.facility_memory_bytes: int = 0

    # -- process management ---------------------------------------------------

    def register_process(self, process: Process) -> None:
        """Track a spawned process for measurement and decoding."""
        self.processes.append(process)

    def process_by_name(self, name: str) -> Process:
        """Look up a registered process by name."""
        for process in self.processes:
            if process.name == name:
                return process
        raise KeyError(f"no process named {name!r}")

    # -- execution ---------------------------------------------------------------

    def run_for(self, duration_ns: int) -> None:
        """Advance virtual time by ``duration_ns``."""
        self.sim.run_until(self.sim.now + duration_ns)

    def run_until_done(
        self, processes: Iterable[Process], deadline_ns: int
    ) -> bool:
        """Run until all threads of ``processes`` finish (or deadline).

        Returns True if everything completed before the deadline.
        """
        targets = list(processes)

        def done() -> bool:
            return all(
                t.state is ThreadState.DONE for p in targets for t in p.threads
            )

        while not done():
            next_time = self.sim.peek_time()
            if next_time is None or next_time > deadline_ns:
                break
            self.sim.step()
        return done()

    # -- measurement ---------------------------------------------------------------

    def snapshot(self) -> CounterSnapshot:
        """Capture cumulative counters now."""
        return CounterSnapshot(
            time_ns=self.sim.now,
            context_switches=self.scheduler.total_context_switches,
            migrations=self.scheduler.total_migrations,
            kernel_ns=sum(c.kernel_ns for c in self.topology.cores),
            busy_ns=sum(c.busy_ns for c in self.topology.cores),
            syscalls=sum(
                t.syscall_count for p in self.processes for t in p.threads
            ),
            work_done=sum(
                t.work_done for p in self.processes for t in p.threads
            ),
            requests={
                p.pid: sum(
                    getattr(t.engine, "requests_completed", 0) for t in p.threads
                )
                for p in self.processes
            },
        )

    def measure_window(self, window_ns: int, warmup_ns: int = 0) -> CounterDelta:
        """Run a warmup then a measurement window; return counter deltas."""
        if warmup_ns:
            self.run_for(warmup_ns)
        before = self.snapshot()
        self.run_for(window_ns)
        return before.delta(self.snapshot())

    def process_requests(self, process: Process) -> int:
        """Requests completed so far by a server-loop process."""
        return sum(
            getattr(t.engine, "requests_completed", 0) for t in process.threads
        )

    def process_cpi(self, process: Process) -> float:
        """Cycles per instruction over the process lifetime so far."""
        cpu_ns = sum(t.cpu_ns + t.kernel_ns for t in process.threads)
        work = sum(t.work_done for t in process.threads)
        if work <= 0:
            return 0.0
        cycles = cpu_ns * self.config.cpu_freq_ghz
        return cycles / work

    def summary(self) -> RunSummary:
        """Completion-oriented summary for compute runs."""
        completion: Dict[str, int] = {}
        cpu: Dict[str, int] = {}
        work: Dict[str, float] = {}
        cpi: Dict[str, float] = {}
        for process in self.processes:
            done_times = [
                getattr(t, "done_at", None)
                for t in process.threads
            ]
            if all(d is not None for d in done_times) and done_times:
                completion[process.name] = max(done_times)  # type: ignore[type-var]
            cpu[process.name] = sum(t.cpu_ns for t in process.threads)
            work[process.name] = sum(t.work_done for t in process.threads)
            cpi[process.name] = self.process_cpi(process)
        return RunSummary(
            completion_ns=completion,
            cpu_ns=cpu,
            work_done=work,
            cpi=cpi,
            utilization=self.topology.utilization(self.sim.now)
            if self.sim.now
            else 0.0,
        )

    # -- memory ledger (Fig 11 / facility budgeting) -----------------------------

    @property
    def memory_bytes(self) -> int:
        return self.config.memory_mb * MIB

    def reserve_facility_memory(self, n_bytes: int) -> None:
        """Account tracing-facility buffer memory against the node."""
        if self.facility_memory_bytes + n_bytes > self.memory_bytes:
            raise MemoryError(
                f"facility reservation of {n_bytes} bytes exceeds node memory"
            )
        self.facility_memory_bytes += n_bytes

    def release_facility_memory(self, n_bytes: int) -> None:
        """Return facility buffer memory to the node."""
        self.facility_memory_bytes = max(0, self.facility_memory_bytes - n_bytes)
