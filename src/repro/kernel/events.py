"""Discrete-event simulation core.

A minimal, fast event loop over integer-nanosecond virtual time.  Events
are callbacks ordered by (time, sequence); the sequence number makes
ordering fully deterministic when events share a timestamp.  Events can be
cancelled in O(1) (lazy deletion on pop).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Cancelling an event is cheap: the heap entry is tombstoned and skipped
    when popped.  An event fires at most once.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "fired")

    def __init__(self, time: int, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"Event(t={self.time}, seq={self.seq}, {state})"


class Simulator:
    """The virtual clock and event queue for one simulated node.

    All simulated components (scheduler, timers, tracers, load generators)
    share one :class:`Simulator`.  Time never moves backwards; scheduling
    an event in the past raises ``ValueError``.
    """

    def __init__(self, start_time: int = 0):
        self.now: int = start_time
        self._heap: List[Event] = []
        self._seq = 0
        self._events_fired = 0

    # -- scheduling -------------------------------------------------------

    def schedule(self, at: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run at absolute virtual time ``at``."""
        if at < self.now:
            raise ValueError(f"cannot schedule at {at} < now {self.now}")
        self._seq += 1
        event = Event(at, self._seq, callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule(self.now + delay, callback)

    # -- execution --------------------------------------------------------

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self.now:
                raise RuntimeError("event heap corrupted: time went backwards")
            self.now = event.time
            event.fired = True
            self._events_fired += 1
            event.callback()
            return True
        return False

    def run_until(self, deadline: int, max_events: Optional[int] = None) -> int:
        """Run events up to and including ``deadline``.

        Returns the number of events fired.  Advances ``now`` to
        ``deadline`` even if the queue drains earlier, so measurement
        windows have well-defined ends.
        """
        fired = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > deadline:
                break
            if max_events is not None and fired >= max_events:
                break
            self.step()
            fired += 1
        if self.now < deadline:
            self.now = deadline
        return fired

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run until no events remain.  Guards against runaway loops."""
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; likely a livelock"
                )
        return fired

    @property
    def events_fired(self) -> int:
        """Total events fired since construction (for sanity checks)."""
        return self._events_fired
