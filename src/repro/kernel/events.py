"""Discrete-event simulation core.

A minimal, fast event loop over integer-nanosecond virtual time.  Events
are callbacks ordered by (time, sequence); the sequence number makes
ordering fully deterministic when events share a timestamp.  Events can be
cancelled in O(1) (lazy deletion on pop).

Two structural choices make this the fastest loop Python allows:

* the heap holds plain ``(time, seq, event)`` tuples, so every sift
  comparison heapq performs is a C-level int compare instead of a Python
  ``Event.__lt__`` call — pushes and pops on deep queues cost a fraction
  of an object heap;
* the run loops (:meth:`Simulator.run_until`,
  :meth:`Simulator.run_until_idle`) pop ready events in one batched pass,
  skipping tombstones inline without re-heapifying and deferring the
  fired-event counter to the end of the batch, so driving a node costs
  one Python frame per *run*, not two method calls per *event*.

Cancelled entries are counted and the heap is compacted in place once
tombstones outnumber live events, bounding memory for workloads that
cancel heavily (re-armed timers).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

#: compaction threshold: never compact heaps smaller than this (the
#: rebuild would cost more than the garbage it reclaims)
_COMPACT_MIN_SIZE = 64


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Cancelling an event is cheap: the heap entry is tombstoned and skipped
    when popped.  An event fires at most once.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[[], None],
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_tombstone()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"Event(t={self.time}, seq={self.seq}, {state})"


_HeapEntry = Tuple[int, int, Event]


class Simulator:
    """The virtual clock and event queue for one simulated node.

    All simulated components (scheduler, timers, tracers, load generators)
    share one :class:`Simulator`.  Time never moves backwards; scheduling
    an event in the past raises ``ValueError``.
    """

    def __init__(self, start_time: int = 0):
        self.now: int = start_time
        self._heap: List[_HeapEntry] = []
        self._seq = 0
        self._events_fired = 0
        self._tombstones = 0
        #: a halted clock fires nothing and never advances (crashed node)
        self.halted = False

    # -- scheduling -------------------------------------------------------

    def schedule(self, at: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run at absolute virtual time ``at``."""
        if at < self.now:
            raise ValueError(f"cannot schedule at {at} < now {self.now}")
        self._seq += 1
        event = Event(at, self._seq, callback, self)
        heapq.heappush(self._heap, (at, self._seq, event))
        return event

    def schedule_after(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule(self.now + delay, callback)

    # -- tombstone accounting ----------------------------------------------

    @property
    def pending_count(self) -> int:
        """Live (non-cancelled, unfired) events currently scheduled."""
        return len(self._heap) - self._tombstones

    def _note_tombstone(self) -> None:
        """One heap entry turned into a tombstone; compact if they win."""
        self._tombstones += 1
        heap = self._heap
        if len(heap) >= _COMPACT_MIN_SIZE and self._tombstones * 2 > len(heap):
            # in-place rebuild so aliases held by running loops stay valid
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)
            self._tombstones = 0

    # -- halting (fault injection) ----------------------------------------

    def halt(self) -> None:
        """Freeze the clock: pending events stay queued but never fire.

        Models a node crash — from the outside the machine simply stops
        responding, with ``now`` frozen at the instant of the crash.  A
        halt can be issued from inside a running event callback; the
        batched run loops observe it after that callback returns.
        """
        self.halted = True

    def resume(self) -> None:
        """Lift a halt (a repaired node); queued events become runnable."""
        self.halted = False

    # -- execution --------------------------------------------------------

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._tombstones -= 1
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        if self.halted:
            return False
        heap = self._heap
        while heap:
            at, _, event = heapq.heappop(heap)
            if event.cancelled:
                self._tombstones -= 1
                continue
            if at < self.now:
                raise RuntimeError("event heap corrupted: time went backwards")
            self.now = at
            event.fired = True
            self._events_fired += 1
            event.callback()
            return True
        return False

    def run_until(self, deadline: int, max_events: Optional[int] = None) -> int:
        """Run events up to and including ``deadline``.

        Returns the number of events fired.  Advances ``now`` to
        ``deadline`` even if the queue drains earlier, so measurement
        windows have well-defined ends.

        This is the hot path of every experiment: ready events are popped
        in one batched pass directly off the heap — no per-event
        ``peek``/``step`` round trips, tombstones skipped inline.  A
        halt issued by a fired callback (node crash) stops the batch and
        freezes ``now`` at the crash instant.
        """
        if self.halted:
            return 0
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        unbounded = max_events is None
        while heap:
            head = heap[0]
            if head[0] > deadline or not (unbounded or fired < max_events):
                break
            pop(heap)
            event = head[2]
            if event.cancelled:
                self._tombstones -= 1
                continue
            self.now = head[0]
            event.fired = True
            fired += 1
            event.callback()
            if self.halted:
                self._events_fired += fired
                return fired
        self._events_fired += fired
        if self.now < deadline:
            self.now = deadline
        return fired

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run until no events remain.  Guards against runaway loops."""
        if self.halted:
            return 0
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        while heap:
            at, _, event = pop(heap)
            if event.cancelled:
                self._tombstones -= 1
                continue
            self.now = at
            event.fired = True
            fired += 1
            if fired > max_events:
                self._events_fired += fired
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; likely a livelock"
                )
            event.callback()
            if self.halted:
                break
        self._events_fired += fired
        return fired

    @property
    def events_fired(self) -> int:
        """Total events fired since construction (for sanity checks)."""
        return self._events_fired
