"""Kernel tracepoints and hook registry.

EXIST's operation-aware tracing controller works by injecting a hook into
the ``sched_switch`` tracepoint (paper §3.2); the eBPF baseline attaches to
``sys_enter``.  This module provides the registry those hooks attach to.
A hook receives the event record and returns the number of nanoseconds of
kernel time its execution cost — the scheduler charges that cost to the
core (and to the incoming thread), which is exactly how tracing control
operations slow traced applications down on real machines.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.task import Thread


#: well-known tracepoint names
SCHED_SWITCH = "sched_switch"
SYS_ENTER = "sys_enter"
SYS_EXIT = "sys_exit"


@dataclass
class SchedSwitchRecord:
    """Payload delivered to ``sched_switch`` hooks.

    Matches the five-tuple EXIST's buffer manager records for
    multi-thread attribution: [Timestamp, CPUID, ProcessID, ThreadID,
    Operation] (paper §3.3), plus the outgoing thread for convenience.
    """

    timestamp: int
    cpu_id: int
    prev: Optional["Thread"]
    next: Optional["Thread"]

    @property
    def five_tuple(self) -> tuple:
        """The 24-byte record EXIST persists per context switch."""
        nxt = self.next
        return (
            self.timestamp,
            self.cpu_id,
            nxt.pid if nxt is not None else 0,
            nxt.tid if nxt is not None else 0,
            "sched_in" if nxt is not None else "idle",
        )


#: wire layout of one persisted sched-switch record: the paper's 24-byte
#: [Timestamp, CPUID, ProcessID, ThreadID, Operation] five-tuple (§3.3)
SCHED_RECORD_DTYPE = np.dtype(
    [
        ("timestamp", "<i8"),
        ("cpu", "<u4"),
        ("pid", "<u4"),
        ("tid", "<u4"),
        ("op", "<u4"),
    ]
)

_OP_IDLE = 0
_OP_SCHED_IN = 1
_OP_NAMES = ("idle", "sched_in")
_OP_CODES = {"idle": _OP_IDLE, "sched_in": _OP_SCHED_IN}


class SchedRecordLog:
    """Columnar store of sched-switch five-tuples.

    The OTC hook fires on *every* context switch involving the target, so
    the record sink is on the simulation's hottest tracing path.  Storing
    one Python tuple (with an interned op string) per switch costs an
    allocation and five boxed fields per event; this log instead appends
    into five primitive columns (``array`` module — no per-append numpy
    overhead) and materializes tuples only when someone reads them.

    The reading surface is a Sequence of the classic five-tuples —
    ``log[0]``, ``log[-1]``, iteration, ``len``, equality against plain
    lists — so existing analysis code and tests are none the wiser.
    ``to_structured()`` / ``to_bytes()`` expose the bulk 24-byte wire
    encoding (one vectorized pass) that per-record packing used to build.
    """

    __slots__ = ("_timestamps", "_cpus", "_pids", "_tids", "_ops")

    def __init__(self) -> None:
        self._timestamps = array("q")
        self._cpus = array("I")
        self._pids = array("I")
        self._tids = array("I")
        self._ops = array("I")

    # -- writing -----------------------------------------------------------

    def append_switch(
        self, timestamp: int, cpu_id: int, pid: int, tid: int, sched_in: bool
    ) -> None:
        """Fast-path append from raw switch fields (no tuple built)."""
        self._timestamps.append(timestamp)
        self._cpus.append(cpu_id)
        self._pids.append(pid)
        self._tids.append(tid)
        self._ops.append(_OP_SCHED_IN if sched_in else _OP_IDLE)

    def append(self, record: tuple) -> None:
        """Append one ``(timestamp, cpu, pid, tid, op)`` five-tuple.

        The compatibility path for producers that hold a materialized
        tuple (e.g. the fault injector's delayed/replayed records).
        """
        timestamp, cpu_id, pid, tid, operation = record
        self._timestamps.append(int(timestamp))
        self._cpus.append(int(cpu_id))
        self._pids.append(int(pid))
        self._tids.append(int(tid))
        self._ops.append(_OP_CODES[operation])

    def extend(self, records) -> None:
        """Append every five-tuple (or log) in ``records``."""
        if isinstance(records, SchedRecordLog):
            self._timestamps.extend(records._timestamps)
            self._cpus.extend(records._cpus)
            self._pids.extend(records._pids)
            self._tids.extend(records._tids)
            self._ops.extend(records._ops)
            return
        for record in records:
            self.append(record)

    # -- sequence protocol (five-tuple view) --------------------------------

    def __len__(self) -> int:
        return len(self._timestamps)

    def _tuple_at(self, index: int) -> tuple:
        return (
            self._timestamps[index],
            self._cpus[index],
            self._pids[index],
            self._tids[index],
            _OP_NAMES[self._ops[index]],
        )

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._tuple_at(i) for i in range(*index.indices(len(self)))]
        return self._tuple_at(index)

    def __iter__(self) -> Iterator[tuple]:
        names = _OP_NAMES
        return (
            (t, c, p, d, names[o])
            for t, c, p, d, o in zip(
                self._timestamps, self._cpus, self._pids, self._tids, self._ops
            )
        )

    def __bool__(self) -> bool:
        return bool(self._timestamps)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SchedRecordLog):
            return list(self) == list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SchedRecordLog(n={len(self)})"

    # -- bulk wire encoding --------------------------------------------------

    def to_structured(self) -> np.ndarray:
        """The whole log as one structured array (24 bytes per record)."""
        out = np.empty(len(self), dtype=SCHED_RECORD_DTYPE)
        out["timestamp"] = np.frombuffer(bytes(self._timestamps), dtype=np.int64)
        out["cpu"] = np.frombuffer(bytes(self._cpus), dtype=np.uint32)
        out["pid"] = np.frombuffer(bytes(self._pids), dtype=np.uint32)
        out["tid"] = np.frombuffer(bytes(self._tids), dtype=np.uint32)
        out["op"] = np.frombuffer(bytes(self._ops), dtype=np.uint32)
        return out

    def to_bytes(self) -> bytes:
        """Serialize as the packed 24-byte wire records, in one pass."""
        return self.to_structured().tobytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "SchedRecordLog":
        """Bulk-decode a :meth:`to_bytes` buffer (vectorized, no loops)."""
        parsed = np.frombuffer(data, dtype=SCHED_RECORD_DTYPE)
        log = cls()
        log._timestamps.frombytes(
            np.ascontiguousarray(parsed["timestamp"]).tobytes()
        )
        log._cpus.frombytes(np.ascontiguousarray(parsed["cpu"]).tobytes())
        log._pids.frombytes(np.ascontiguousarray(parsed["pid"]).tobytes())
        log._tids.frombytes(np.ascontiguousarray(parsed["tid"]).tobytes())
        log._ops.frombytes(np.ascontiguousarray(parsed["op"]).tobytes())
        return log


@dataclass
class SyscallRecord:
    """Payload delivered to ``sys_enter`` / ``sys_exit`` hooks."""

    timestamp: int
    cpu_id: int
    thread: "Thread"
    syscall: str


Hook = Callable[[object], int]


class TracepointRegistry:
    """Named tracepoints with ordered hook lists.

    ``fire`` returns the summed kernel-time cost of all hooks so callers
    can charge it; hooks that cost nothing return 0.
    """

    def __init__(self) -> None:
        self._hooks: Dict[str, List[Hook]] = {}
        self.fire_counts: Dict[str, int] = {}

    def attach(self, tracepoint: str, hook: Hook) -> None:
        """Attach ``hook`` to ``tracepoint`` (appended after existing hooks)."""
        self._hooks.setdefault(tracepoint, []).append(hook)

    def detach(self, tracepoint: str, hook: Hook) -> None:
        """Remove a previously attached hook; raises if absent."""
        self._hooks[tracepoint].remove(hook)

    def hooks(self, tracepoint: str) -> List[Hook]:
        """Copy of the hooks attached to ``tracepoint``."""
        return list(self._hooks.get(tracepoint, ()))

    def has_hooks(self, tracepoint: str) -> bool:
        """Whether any hook is attached to ``tracepoint``."""
        return bool(self._hooks.get(tracepoint))

    def fire(self, tracepoint: str, record: object) -> int:
        """Invoke all hooks of ``tracepoint``; return total cost in ns."""
        hooks = self._hooks.get(tracepoint)
        self.fire_counts[tracepoint] = self.fire_counts.get(tracepoint, 0) + 1
        if not hooks:
            return 0
        total = 0
        for hook in hooks:
            cost = hook(record)
            if cost:
                total += int(cost)
        return total
