"""Kernel tracepoints and hook registry.

EXIST's operation-aware tracing controller works by injecting a hook into
the ``sched_switch`` tracepoint (paper §3.2); the eBPF baseline attaches to
``sys_enter``.  This module provides the registry those hooks attach to.
A hook receives the event record and returns the number of nanoseconds of
kernel time its execution cost — the scheduler charges that cost to the
core (and to the incoming thread), which is exactly how tracing control
operations slow traced applications down on real machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.task import Thread


#: well-known tracepoint names
SCHED_SWITCH = "sched_switch"
SYS_ENTER = "sys_enter"
SYS_EXIT = "sys_exit"


@dataclass
class SchedSwitchRecord:
    """Payload delivered to ``sched_switch`` hooks.

    Matches the five-tuple EXIST's buffer manager records for
    multi-thread attribution: [Timestamp, CPUID, ProcessID, ThreadID,
    Operation] (paper §3.3), plus the outgoing thread for convenience.
    """

    timestamp: int
    cpu_id: int
    prev: Optional["Thread"]
    next: Optional["Thread"]

    @property
    def five_tuple(self) -> tuple:
        """The 24-byte record EXIST persists per context switch."""
        nxt = self.next
        return (
            self.timestamp,
            self.cpu_id,
            nxt.pid if nxt is not None else 0,
            nxt.tid if nxt is not None else 0,
            "sched_in" if nxt is not None else "idle",
        )


@dataclass
class SyscallRecord:
    """Payload delivered to ``sys_enter`` / ``sys_exit`` hooks."""

    timestamp: int
    cpu_id: int
    thread: "Thread"
    syscall: str


Hook = Callable[[object], int]


class TracepointRegistry:
    """Named tracepoints with ordered hook lists.

    ``fire`` returns the summed kernel-time cost of all hooks so callers
    can charge it; hooks that cost nothing return 0.
    """

    def __init__(self) -> None:
        self._hooks: Dict[str, List[Hook]] = {}
        self.fire_counts: Dict[str, int] = {}

    def attach(self, tracepoint: str, hook: Hook) -> None:
        """Attach ``hook`` to ``tracepoint`` (appended after existing hooks)."""
        self._hooks.setdefault(tracepoint, []).append(hook)

    def detach(self, tracepoint: str, hook: Hook) -> None:
        """Remove a previously attached hook; raises if absent."""
        self._hooks[tracepoint].remove(hook)

    def hooks(self, tracepoint: str) -> List[Hook]:
        """Copy of the hooks attached to ``tracepoint``."""
        return list(self._hooks.get(tracepoint, ()))

    def has_hooks(self, tracepoint: str) -> bool:
        """Whether any hook is attached to ``tracepoint``."""
        return bool(self._hooks.get(tracepoint))

    def fire(self, tracepoint: str, record: object) -> int:
        """Invoke all hooks of ``tracepoint``; return total cost in ns."""
        hooks = self._hooks.get(tracepoint)
        self.fire_counts[tracepoint] = self.fire_counts.get(tracepoint, 0) + 1
        if not hooks:
            return 0
        total = 0
        for hook in hooks:
            cost = hook(record)
            if cost:
                total += int(cost)
        return total
