"""High-resolution timers.

EXIST's tracing controller bounds every tracing period with an HRT so a
lost stop request can never leave tracers enabled forever (paper §3.2).
This is a thin, restartable wrapper over the simulator's event queue that
mirrors the hrtimer API shape (arm/cancel/expired).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.kernel.events import Event, Simulator


class HighResolutionTimer:
    """A one-shot, re-armable timer bound to a simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> t = HighResolutionTimer(sim, lambda: fired.append(sim.now))
    >>> t.arm_after(100)
    >>> _ = sim.run_until_idle()
    >>> fired
    [100]
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]):
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None
        self.fire_count = 0

    @property
    def armed(self) -> bool:
        """True while a pending expiry exists."""
        return (
            self._event is not None
            and not self._event.cancelled
            and not self._event.fired
        )

    def arm_at(self, deadline: int) -> None:
        """Arm (or re-arm) the timer to fire at absolute time ``deadline``."""
        self.cancel()
        self._event = self._sim.schedule(deadline, self._fire)

    def arm_after(self, delay: int) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` ns from now."""
        self.arm_at(self._sim.now + delay)

    def cancel(self) -> None:
        """Disarm without firing; safe to call repeatedly."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self.fire_count += 1
        self._callback()
