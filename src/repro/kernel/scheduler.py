"""CFS-like scheduler over the simulated topology.

Threads run in bounded slices; every core-local switch from one thread to
another fires the ``sched_switch`` tracepoint, whose hooks may charge
kernel time — this is precisely the path EXIST optimizes, so the fidelity
of switch counting matters more here than scheduling-policy details.  The
policy is a simplified CFS: per-core run queues ordered by virtual
runtime, wakeup placement on the least-loaded allowed core, and no
mid-slice preemption (slices are short enough that latency effects are
captured at slice granularity).

Tracing facilities integrate through :class:`SchedulerHooks`:

* ``slice_tax`` — continuous CPU fraction stolen from a running thread
  (per-branch tracing tax, PMI sampling, perf's buffer draining, ...);
* ``wants_path`` — whether a hardware tracer needs the symbolic
  control-flow chunk for the thread's next slice;
* ``on_slice`` — delivery of each finished slice (the per-core tracer
  consumes branch counts and path chunks here).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from repro.kernel.cpu import CpuTopology, LogicalCore
from repro.kernel.events import Simulator
from repro.kernel.syscalls import SyscallTable
from repro.kernel.task import SLICE_DONE, SLICE_SYSCALL, SliceResult, Thread, ThreadState
from repro.kernel.tracepoints import (
    SCHED_SWITCH,
    SYS_ENTER,
    SchedSwitchRecord,
    SyscallRecord,
    TracepointRegistry,
)
from repro.util.rng import RngFactory
from repro.util.units import MSEC, USEC


class SchedulerHooks(Protocol):
    """Integration surface for tracing facilities (duck-typed)."""

    def slice_tax(self, thread: Thread, core: LogicalCore) -> float:
        """Continuous CPU fraction stolen while ``thread`` runs."""
        ...  # pragma: no cover - protocol

    def wants_path(self, thread: Thread, core: LogicalCore) -> bool:
        """Whether a tracer wants the next slice's path chunk."""
        ...  # pragma: no cover - protocol

    def on_slice(
        self, core: LogicalCore, thread: Thread, start_ns: int, result: SliceResult
    ) -> None:
        """Delivery of each finished slice."""
        ...  # pragma: no cover - protocol


@dataclass
class SchedulerConfig:
    """Scheduler timing constants (Linux-ish defaults)."""

    timeslice_ns: int = 2 * MSEC
    context_switch_cost_ns: int = 2 * USEC
    migration_cost_ns: int = 4 * USEC
    #: wakeup vruntime bonus, as a fraction of one timeslice
    wakeup_bonus: float = 0.5


@dataclass(order=True)
class _QueueEntry:
    vruntime: float
    tid: int
    thread: Thread = field(compare=False)
    valid: bool = field(default=True, compare=False)


class _RunQueue:
    """Min-vruntime queue with lazy deletion."""

    def __init__(self) -> None:
        self._heap: List[_QueueEntry] = []
        self._entries: Dict[int, _QueueEntry] = {}
        self.min_vruntime: float = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, thread: Thread) -> None:
        if thread.tid in self._entries:
            raise RuntimeError(f"{thread} already enqueued")
        entry = _QueueEntry(thread.vruntime, thread.tid, thread)
        self._entries[thread.tid] = entry
        heapq.heappush(self._heap, entry)

    def pop(self) -> Optional[Thread]:
        while self._heap:
            entry = heapq.heappop(self._heap)
            if not entry.valid:
                continue
            del self._entries[entry.tid]
            self.min_vruntime = max(self.min_vruntime, entry.vruntime)
            return entry.thread
        return None

    def remove(self, thread: Thread) -> bool:
        entry = self._entries.pop(thread.tid, None)
        if entry is None:
            return False
        entry.valid = False
        return True


class Scheduler:
    """Drives thread execution over all cores of one node."""

    def __init__(
        self,
        sim: Simulator,
        topology: CpuTopology,
        tracepoints: TracepointRegistry,
        syscalls: SyscallTable,
        rng: RngFactory,
        config: Optional[SchedulerConfig] = None,
    ):
        self.sim = sim
        self.topology = topology
        self.tracepoints = tracepoints
        self.syscalls = syscalls
        self.config = config or SchedulerConfig()
        self._rng = rng.stream("scheduler")
        self._queues: Dict[int, _RunQueue] = {
            core.core_id: _RunQueue() for core in topology.cores
        }
        self._hooks: List[SchedulerHooks] = []
        #: packed (tid << 10 | core_id) -> (epoch, tax, record_path)
        #: decision table; entries are valid while their epoch matches
        #: :attr:`_hook_epoch` — see invalidate_hook_cache()
        self._hook_cache: Dict[int, Tuple[int, float, bool]] = {}
        #: current tracing epoch; bumping it invalidates every cached
        #: decision in O(1) instead of clearing the table
        self._hook_epoch = 0
        self.total_context_switches = 0
        self.total_migrations = 0
        #: (timestamp, cpu, pid, tid) log of switches, kept only if enabled
        self.switch_log: Optional[List[Tuple[int, int, int, int]]] = None
        self._threads: List[Thread] = []

    # -- facility integration ----------------------------------------------

    def add_hooks(self, hooks: SchedulerHooks) -> None:
        """Register a tracing facility's hook surface."""
        self._hooks.append(hooks)
        self.invalidate_hook_cache()

    def remove_hooks(self, hooks: SchedulerHooks) -> None:
        """Unregister a previously added hook surface."""
        self._hooks.remove(hooks)
        self.invalidate_hook_cache()

    def invalidate_hook_cache(self) -> None:
        """Invalidate cached per-thread hook decisions.

        ``slice_tax``/``wants_path`` answers are cached per
        ``(tid, core_id)`` because for every scheme they are constant
        between *tracing epochs* — the points where a facility flips
        per-core tracer state (EXIST's OTC enabling/disabling cores,
        schemes installing or removing).  Facilities that mutate state a
        hook reads MUST call this at each such flip; ``add_hooks`` /
        ``remove_hooks`` invalidate automatically.

        Invalidation bumps the epoch counter instead of clearing the
        table: every stale entry dies in O(1), and a re-queried decision
        overwrites its slot in place.  Under OTC's frequent window flips
        this turns the per-epoch cost from O(#threads x #cores) into a
        constant.  The table is cleared wholesale only when it outgrows a
        fixed bound (long campaigns churning many thousands of threads),
        which keeps stale-epoch entries from accumulating forever.
        """
        self._hook_epoch += 1
        if len(self._hook_cache) > 65536:
            self._hook_cache.clear()

    def enable_switch_log(self) -> None:
        """Retain a (timestamp, cpu, pid, tid) record per context switch."""
        self.switch_log = []

    # -- thread admission ----------------------------------------------------

    def add_thread(self, thread: Thread, preferred_core: Optional[int] = None) -> None:
        """Admit a READY thread; it starts running as cores become free."""
        if thread.state is not ThreadState.READY:
            raise ValueError(f"cannot admit thread in state {thread.state}")
        self._threads.append(thread)
        core = self._place(thread, preferred_core)
        thread.vruntime = max(
            thread.vruntime, self._queues[core.core_id].min_vruntime
        )
        self._enqueue(core, thread)

    def _place(
        self, thread: Thread, preferred_core: Optional[int] = None
    ) -> LogicalCore:
        """Pick the least-loaded core the thread may run on."""
        if preferred_core is not None and thread.allowed(preferred_core):
            return self.topology.core(preferred_core)
        candidates = [
            core for core in self.topology.cores if thread.allowed(core.core_id)
        ]
        if not candidates:
            raise ValueError(f"{thread} has empty effective cpuset")

        def load(core: LogicalCore) -> Tuple[int, int]:
            running = 0 if core.running is None else 1
            return (len(self._queues[core.core_id]) + running, core.core_id)

        return min(candidates, key=load)

    def _enqueue(self, core: LogicalCore, thread: Thread) -> None:
        if thread.last_core is not None and thread.last_core != core.core_id:
            thread.migrations += 1
            self.total_migrations += 1
        self._queues[core.core_id].push(thread)
        if core.running is None:
            # core is idle: dispatch immediately (as a fresh event so state
            # settles before the switch fires hooks)
            self.sim.schedule_after(0, lambda c=core: self._dispatch(c))

    # -- core dispatch loop ---------------------------------------------------

    def _dispatch(self, core: LogicalCore) -> None:
        """If idle, pick the next thread on ``core`` and start a slice."""
        if core.running is not None:
            return
        thread = self._queues[core.core_id].pop()
        if thread is None:
            return
        self._context_switch(core, prev=None, nxt=thread)
        self._start_slice(core, thread)

    def _switch_out(self, core: LogicalCore, prev: Thread) -> None:
        """``prev`` left the core (blocked or exited): switch to the next
        runnable thread, or to idle (the swapper) if none — either way
        ``sched_switch`` fires, as on a real kernel."""
        if core.running is not None:  # pragma: no cover - defensive
            return
        nxt = self._queues[core.core_id].pop()
        self._context_switch(core, prev=prev, nxt=nxt)
        if nxt is not None:
            self._start_slice(core, nxt)

    def _context_switch(
        self, core: LogicalCore, prev: Optional[Thread], nxt: Optional[Thread]
    ) -> None:
        """Account one switch and fire the tracepoint hooks."""
        core.context_switches += 1
        self.total_context_switches += 1
        record = SchedSwitchRecord(
            timestamp=self.sim.now, cpu_id=core.core_id, prev=prev, next=nxt
        )
        hook_cost = self.tracepoints.fire(SCHED_SWITCH, record)
        cost = self.config.context_switch_cost_ns + hook_cost
        core.kernel_ns += cost
        if self.switch_log is not None:
            self.switch_log.append(
                (
                    self.sim.now,
                    core.core_id,
                    nxt.pid if nxt is not None else 0,
                    nxt.tid if nxt is not None else 0,
                )
            )
        if nxt is not None:
            nxt.context_switches_in += 1
            nxt.kernel_ns += cost
            if hook_cost:
                nxt.tracing_overhead_ns += hook_cost
            # the incoming thread pays the switch by starting late
            nxt._switch_penalty_ns = cost  # type: ignore[attr-defined]

    def _start_slice(self, core: LogicalCore, thread: Thread) -> None:
        thread.state = ThreadState.RUNNING
        thread.current_core = core.core_id
        thread.last_core = core.core_id
        core.running = thread

        if not self._hooks:
            # untraced systems skip the decision table entirely
            tax = 0.0
            record_path = False
        else:
            # packed int key: tuple construction and tuple hashing are
            # measurably slower than a single int on this per-switch path
            key = (thread.tid << 10) | core.core_id
            epoch = self._hook_epoch
            cached = self._hook_cache.get(key)
            if cached is not None and cached[0] == epoch:
                tax = cached[1]
                record_path = cached[2]
            else:
                tax = 0.0
                record_path = False
                for hooks in self._hooks:
                    tax += hooks.slice_tax(thread, core)
                    record_path = record_path or hooks.wants_path(thread, core)
                tax = min(tax, 0.95)
                self._hook_cache[key] = (epoch, tax, record_path)

        speed = self.topology.speed_factor(core, thread.process.llc_pressure)
        work_rate = speed * (1.0 - tax)
        budget = self.config.timeslice_ns
        start = self.sim.now
        result = thread.engine.advance(budget, work_rate, record_path)
        if result.ran_ns <= 0 and result.outcome not in (SLICE_DONE, SLICE_SYSCALL):
            raise RuntimeError(
                f"engine for {thread} made no progress (outcome={result.outcome})"
            )
        penalty = getattr(thread, "_switch_penalty_ns", 0)
        if penalty:
            thread._switch_penalty_ns = 0  # type: ignore[attr-defined]
        end = start + penalty + result.ran_ns
        self.sim.schedule(
            end, lambda c=core, t=thread, s=start, r=result: self._finish_slice(c, t, s, r)
        )

    def _finish_slice(
        self, core: LogicalCore, thread: Thread, start_ns: int, result: SliceResult
    ) -> None:
        # accounting
        thread.cpu_ns += result.ran_ns
        thread.work_done += result.work_done
        thread.branches_retired += result.branches
        core.busy_ns += result.ran_ns
        weight_scale = 1024.0 / thread.weight
        thread.vruntime += result.ran_ns * weight_scale

        for hooks in self._hooks:
            hooks.on_slice(core, thread, start_ns, result)

        if result.outcome == SLICE_DONE:
            thread.state = ThreadState.DONE
            thread.done_at = self.sim.now
            thread.current_core = None
            core.running = None
            self._switch_out(core, prev=thread)
            return

        if result.outcome == SLICE_SYSCALL:
            self._handle_syscall(core, thread, result)
            return

        # timeslice expiry or voluntary yield: requeue and pick next
        thread.state = ThreadState.READY
        thread.current_core = None
        core.running = None
        queue = self._queues[core.core_id]
        queue.push(thread)
        nxt = queue.pop()
        if nxt is None:  # pragma: no cover - we just pushed
            return
        if nxt is not thread:
            self._context_switch(core, prev=thread, nxt=nxt)
        self._start_slice(core, nxt)

    # -- syscalls ---------------------------------------------------------------

    def _handle_syscall(
        self, core: LogicalCore, thread: Thread, result: SliceResult
    ) -> None:
        assert result.syscall is not None
        spec = self.syscalls.get(result.syscall)
        thread.syscall_count += 1
        record = SyscallRecord(
            timestamp=self.sim.now,
            cpu_id=core.core_id,
            thread=thread,
            syscall=result.syscall,
        )
        probe_cost = self.tracepoints.fire(SYS_ENTER, record)
        kernel_cost = spec.kernel_ns + probe_cost
        core.kernel_ns += kernel_cost
        thread.kernel_ns += kernel_cost
        if probe_cost:
            thread.tracing_overhead_ns += probe_cost

        if spec.blocking:
            block_ns = self._sample_block(spec, result.block_ns)
            wake_at = self.sim.now + kernel_cost + block_ns
            thread.state = ThreadState.BLOCKED
            thread.current_core = None
            core.running = None
            self.sim.schedule(wake_at, lambda t=thread: self._wake(t))
            # core stays busy for the kernel part of the syscall
            core.busy_ns += kernel_cost
            self.sim.schedule_after(
                kernel_cost, lambda c=core, t=thread: self._switch_out(c, prev=t)
            )
        else:
            # non-blocking: charge kernel time, then continue on-core
            core.busy_ns += kernel_cost
            thread.state = ThreadState.READY
            thread.current_core = None
            core.running = None
            self.sim.schedule_after(
                kernel_cost, lambda c=core, t=thread: self._resume_after_syscall(c, t)
            )

    def _resume_after_syscall(self, core: LogicalCore, thread: Thread) -> None:
        if core.running is not None:  # pragma: no cover - defensive
            self._queues[core.core_id].push(thread)
            return
        queue = self._queues[core.core_id]
        queue.push(thread)
        nxt = queue.pop()
        if nxt is not thread:
            self._context_switch(core, prev=thread, nxt=nxt)
        self._start_slice(core, nxt)

    def _sample_block(self, spec, engine_block_ns: int) -> int:
        base = engine_block_ns if engine_block_ns > 0 else spec.block_ns
        if spec.block_jitter <= 0.0:
            return base
        noise = math.exp(self._rng.normal(0.0, spec.block_jitter))
        return max(1, int(base * noise))

    def _wake(self, thread: Thread) -> None:
        if thread.state is not ThreadState.BLOCKED:
            return
        thread.state = ThreadState.READY
        thread.wakeups += 1
        core = self._place(thread, preferred_core=thread.last_core)
        bonus = self.config.wakeup_bonus * self.config.timeslice_ns
        thread.vruntime = max(
            thread.vruntime, self._queues[core.core_id].min_vruntime - bonus
        )
        self._enqueue(core, thread)

    # -- queries --------------------------------------------------------------

    def runnable_count(self) -> int:
        """Threads currently READY or RUNNING (for liveness checks)."""
        return sum(
            1
            for t in self._threads
            if t.state in (ThreadState.READY, ThreadState.RUNNING)
        )

    def all_done(self) -> bool:
        """True when every admitted thread has finished."""
        return all(t.state is ThreadState.DONE for t in self._threads)
