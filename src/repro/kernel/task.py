"""Processes and threads.

A :class:`Thread` owns an *execution engine* (built by
:mod:`repro.program.execution`) that models the program's forward progress:
given a CPU-time budget and an effective speed factor, the engine consumes
time, completes work, emits syscalls, and (when a hardware tracer is
listening) produces the symbolic branch-path chunk executed during the
slice.  The kernel side only depends on the small :class:`SliceResult`
contract, keeping the scheduler independent of the program model.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence, Tuple


class ThreadState(enum.Enum):
    """Lifecycle states, mirroring the usual kernel task states."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


#: outcome tags of one execution slice
SLICE_TIMESLICE = "timeslice"
SLICE_SYSCALL = "syscall"
SLICE_DONE = "done"
SLICE_YIELD = "yield"


@dataclass
class SliceResult:
    """What happened while a thread ran on a core for one slice.

    ``ran_ns`` is CPU time consumed (wall time on the core).  ``work_done``
    is abstract program work (calibrated as instructions) completed, which
    can be less than ``ran_ns * nominal_rate`` under interference or
    tracing taxes.  ``branches`` is the *real-scale* number of retired
    branches in the slice, used for trace-volume accounting.
    ``event_range`` is the half-open range of symbolic path-event indices
    the slice executed (see :class:`repro.program.path.PathModel`); it is
    populated regardless of tracing so ground truth always exists.
    """

    ran_ns: int
    work_done: float
    branches: int
    outcome: str
    syscall: Optional[str] = None
    block_ns: int = 0
    event_range: Optional[Tuple[int, int]] = None


class ExecutionEngine(Protocol):
    """The program-side contract the scheduler drives.

    Implemented by :class:`repro.program.execution.ProgramExecution`.
    """

    def advance(
        self, budget_ns: int, work_rate: float, record_path: bool
    ) -> SliceResult:
        """Run for at most ``budget_ns`` of CPU time at ``work_rate``."""
        ...  # pragma: no cover - protocol

    @property
    def finished(self) -> bool:  # pragma: no cover - protocol
        ...


_pid_counter = itertools.count(1000)
_tid_counter = itertools.count(5000)


@dataclass
class Process:
    """A traced or co-located process (the pod's unit of execution).

    ``cr3`` stands in for the page-table base the hardware tracer's CR3
    filter matches on; it only needs to be unique per process.
    """

    name: str
    binary: object = None
    llc_pressure: float = 0.3
    pid: int = field(default_factory=lambda: next(_pid_counter))
    cr3: int = 0
    threads: List["Thread"] = field(default_factory=list)
    #: pod this process belongs to (set by the cluster layer, optional)
    pod: Optional[object] = None

    def __post_init__(self) -> None:
        if self.cr3 == 0:
            self.cr3 = 0x1000_0000 + self.pid * 0x1000

    def new_thread(
        self,
        engine: ExecutionEngine,
        cpuset: Optional[Sequence[int]] = None,
        weight: int = 1024,
        name: Optional[str] = None,
        tid: Optional[int] = None,
    ) -> "Thread":
        """Create a thread of this process with the given engine.

        ``tid`` pins the thread id instead of drawing the global counter —
        used when a cluster node is rebuilt from a placement spec in a
        pool worker, so the rebuilt threads (and hence trace bytes) match
        the originals byte for byte.
        """
        thread = Thread(
            process=self,
            engine=engine,
            cpuset=tuple(cpuset) if cpuset is not None else None,
            weight=weight,
            name=name or f"{self.name}/{len(self.threads)}",
            tid=tid,
        )
        self.threads.append(thread)
        return thread

    @property
    def alive_threads(self) -> List["Thread"]:
        return [t for t in self.threads if t.state is not ThreadState.DONE]


class Thread:
    """A schedulable entity with CFS-style accounting."""

    def __init__(
        self,
        process: Process,
        engine: ExecutionEngine,
        cpuset: Optional[Tuple[int, ...]] = None,
        weight: int = 1024,
        name: str = "",
        tid: Optional[int] = None,
    ):
        self.tid: int = tid if tid is not None else next(_tid_counter)
        self.process = process
        self.engine = engine
        #: allowed logical core ids (None = all cores)
        self.cpuset = cpuset
        self.weight = weight
        self.name = name or f"{process.name}/t{self.tid}"
        self.state = ThreadState.READY
        self.vruntime: float = 0.0
        self.current_core: Optional[int] = None
        self.last_core: Optional[int] = None
        #: virtual time when the thread finished (None while alive)
        self.done_at: Optional[int] = None

        # -- accounting -----------------------------------------------------
        self.cpu_ns: int = 0
        self.kernel_ns: int = 0
        self.work_done: float = 0.0
        self.branches_retired: int = 0
        self.syscall_count: int = 0
        self.context_switches_in: int = 0
        self.migrations: int = 0
        self.wakeups: int = 0
        #: ns of overhead charged to this thread by tracing facilities
        self.tracing_overhead_ns: int = 0

    def allowed(self, core_id: int) -> bool:
        """Whether this thread may run on ``core_id``."""
        return self.cpuset is None or core_id in self.cpuset

    @property
    def pid(self) -> int:
        return self.process.pid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Thread({self.name}, tid={self.tid}, state={self.state.value})"
