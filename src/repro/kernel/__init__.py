"""Simulated operating-system substrate.

The paper's EXIST runs as a Linux kernel extension on real Intel servers.
This package provides the equivalent substrate as a discrete-event
simulation: CPU topology with hyperthreads and shared LLC domains
(:mod:`repro.kernel.cpu`), processes and threads (:mod:`repro.kernel.task`),
a CFS-like scheduler that produces ``sched_switch`` events
(:mod:`repro.kernel.scheduler`), kernel tracepoints that hooks can attach
to (:mod:`repro.kernel.tracepoints`), high-resolution timers
(:mod:`repro.kernel.timer`), and a syscall layer
(:mod:`repro.kernel.syscalls`), all driven by the event core in
:mod:`repro.kernel.events` and assembled into a bootable node by
:mod:`repro.kernel.system`.
"""

from repro.kernel.cpu import CpuTopology, InterferenceModel, LogicalCore
from repro.kernel.events import Event, Simulator
from repro.kernel.scheduler import Scheduler, SchedulerConfig
from repro.kernel.syscalls import SyscallSpec, SyscallTable
from repro.kernel.system import KernelSystem, RunSummary, SystemConfig
from repro.kernel.task import Process, Thread, ThreadState
from repro.kernel.timer import HighResolutionTimer
from repro.kernel.tracepoints import SchedSwitchRecord, TracepointRegistry

__all__ = [
    "Simulator",
    "Event",
    "CpuTopology",
    "LogicalCore",
    "InterferenceModel",
    "Process",
    "Thread",
    "ThreadState",
    "TracepointRegistry",
    "SchedSwitchRecord",
    "HighResolutionTimer",
    "SyscallTable",
    "SyscallSpec",
    "Scheduler",
    "SchedulerConfig",
    "KernelSystem",
    "SystemConfig",
    "RunSummary",
]
