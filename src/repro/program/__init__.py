"""Synthetic program substrate.

The paper traces SPEC CPU 2017, memcached/nginx/mysql, and five Alibaba
production services.  None of those binaries (nor an x86 CPU to run them)
is available here, so this package provides the closest synthetic
equivalent: generated binaries with functions, basic blocks, and a control
flow graph (:mod:`repro.program.binary`, :mod:`repro.program.generator`);
a deterministic Markov path model over the CFG
(:mod:`repro.program.path`); an execution engine that converts CPU-time
budgets into retired work, branches, syscalls, and symbolic path chunks
(:mod:`repro.program.execution`); and the calibrated workload library
matching the paper's Table 1 (:mod:`repro.program.workloads`).
"""

from repro.program.binary import BasicBlock, Binary, Function, FunctionCategory, MemoryProfile
from repro.program.execution import ProgramExecution, ServerLoopExecution
from repro.program.generator import BinaryShape, generate_binary
from repro.program.path import PathModel
from repro.program.workloads import (
    WORKLOADS,
    WorkloadKind,
    WorkloadProfile,
    compute_workloads,
    get_workload,
    online_workloads,
    realworld_workloads,
)

__all__ = [
    "BasicBlock",
    "Binary",
    "Function",
    "FunctionCategory",
    "MemoryProfile",
    "BinaryShape",
    "generate_binary",
    "PathModel",
    "ProgramExecution",
    "ServerLoopExecution",
    "WorkloadProfile",
    "WorkloadKind",
    "WORKLOADS",
    "get_workload",
    "compute_workloads",
    "online_workloads",
    "realworld_workloads",
]
