"""Execution engines driven by the scheduler.

An engine converts CPU-time budgets into retired instructions, branches,
syscalls, and symbolic path-event ranges.  Two concrete engines cover the
paper's workload classes:

* :class:`ProgramExecution` — a finite compute job (SPEC-like): a fixed
  instruction budget interleaved with background syscalls.
* :class:`ServerLoopExecution` — an endless request loop (memcached /
  nginx / mysql / cloud services under a saturating closed-loop client):
  each request is a receive syscall, a burst of work, and a send syscall;
  completed requests are counted for throughput.

Both share the scripted-execution core: a generator yields ``("work", n)``
and ``("syscall", name)`` items, and :meth:`advance` consumes them against
the slice budget.  Progress (and therefore the symbolic path) depends only
on cumulative retired work — never on timing — so runs under different
tracing schemes execute identical paths at different speeds.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.kernel.task import SLICE_DONE, SLICE_SYSCALL, SLICE_TIMESLICE, SliceResult
from repro.program.path import PathModel
from repro.util.rng import derive_seed

ScriptItem = Tuple[str, object]


class _ScriptedExecution:
    """Shared advance loop over a (work | syscall) script."""

    def __init__(
        self,
        path_model: PathModel,
        nominal_ips: float,
        branch_per_instr: float,
        seed: int,
        label: str,
        phase_offset_instr: float = 0.0,
    ):
        if nominal_ips <= 0:
            raise ValueError("nominal_ips must be positive")
        if not 0.0 < branch_per_instr < 1.0:
            raise ValueError("branch_per_instr must be in (0, 1)")
        if phase_offset_instr < 0:
            raise ValueError("phase offset cannot be negative")
        self.path_model = path_model
        self.nominal_ips = nominal_ips
        self.branch_per_instr = branch_per_instr
        self._rng = np.random.default_rng(derive_seed(seed, "exec", label))
        self._script: Iterator[ScriptItem] = self._make_script()
        self._current: Optional[ScriptItem] = None
        self._current_progress: float = 0.0
        #: replicas of long-running services start at different phases of
        #: the behaviour cycle; the offset shifts the symbolic path index
        self.phase_offset_instr = float(phase_offset_instr)
        self.instructions_done: float = float(phase_offset_instr)
        self._finished = False

    # -- subclass contract ---------------------------------------------------

    def _make_script(self) -> Iterator[ScriptItem]:
        raise NotImplementedError

    def _on_item_complete(self, item: ScriptItem) -> None:
        """Subclass notification when a script item fully completes."""

    # -- engine protocol -------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def branches_cum(self) -> float:
        return self.instructions_done * self.branch_per_instr

    @property
    def event_index(self) -> int:
        """Current absolute symbolic path-event index."""
        return int(self.branches_cum // self.path_model.stride)

    def advance(
        self, budget_ns: int, work_rate: float, record_path: bool
    ) -> SliceResult:
        if self._finished:
            raise RuntimeError("advance() after completion")
        if budget_ns <= 0:
            raise ValueError("budget must be positive")
        work_rate = max(work_rate, 1e-6)
        ips = self.nominal_ips * work_rate
        budget_instr = budget_ns * ips

        bpi = self.branch_per_instr
        stride = self.path_model.stride
        branches_before = self.instructions_done * bpi
        consumed_instr = 0.0
        outcome = SLICE_TIMESLICE
        syscall: Optional[str] = None

        while True:
            if self._current is None:
                self._current = next(self._script, None)
                self._current_progress = 0.0
            if self._current is None:
                self._finished = True
                outcome = SLICE_DONE
                break
            kind, payload = self._current
            if kind == "work":
                remaining = float(payload) - self._current_progress  # type: ignore[arg-type]
                available = budget_instr - consumed_instr
                take = min(remaining, available)
                consumed_instr += take
                self._current_progress += take
                if self._current_progress >= float(payload) - 1e-9:  # type: ignore[arg-type]
                    item = self._current
                    self._current = None
                    self._on_item_complete(item)
                    continue
                outcome = SLICE_TIMESLICE
                break
            if kind == "syscall":
                item = self._current
                self._current = None
                self._on_item_complete(item)
                outcome = SLICE_SYSCALL
                syscall = str(payload)
                break
            # zero-cost marker items (e.g. "request_end"): complete and move on
            item = self._current
            self._current = None
            self._on_item_complete(item)

        self.instructions_done += consumed_instr
        branches_after = self.instructions_done * bpi
        ran_ns = int(math.ceil(consumed_instr / ips)) if consumed_instr else 0
        event_range = (
            int(branches_before // stride),
            int(branches_after // stride),
        )
        return SliceResult(
            ran_ns=ran_ns,
            work_done=consumed_instr,
            branches=int(branches_after) - int(branches_before),
            outcome=outcome,
            syscall=syscall,
            event_range=event_range,
        )


class ProgramExecution(_ScriptedExecution):
    """Finite compute job with Poisson background syscalls.

    ``work_total`` is the job's instruction budget; ``syscall_interval``
    the mean instructions between syscalls; ``syscall_mix`` maps syscall
    names to selection probabilities.
    """

    def __init__(
        self,
        path_model: PathModel,
        work_total: float,
        nominal_ips: float = 3.0,
        branch_per_instr: float = 0.18,
        syscall_interval: float = 2.0e6,
        syscall_mix: Optional[Dict[str, float]] = None,
        seed: int = 0,
        label: str = "compute",
        phase_offset_instr: float = 0.0,
    ):
        if work_total <= 0:
            raise ValueError("work_total must be positive")
        self.work_total = float(work_total)
        self.syscall_interval = float(syscall_interval)
        self.syscall_mix = syscall_mix or {"brk": 0.5, "madvise": 0.3, "mmap": 0.2}
        self._mix_names = list(self.syscall_mix)
        mix = np.array([self.syscall_mix[n] for n in self._mix_names], dtype=float)
        self._mix_probs = mix / mix.sum()
        super().__init__(
            path_model, nominal_ips, branch_per_instr, seed, label,
            phase_offset_instr=phase_offset_instr,
        )

    def _make_script(self) -> Iterator[ScriptItem]:
        emitted = 0.0
        while emitted < self.work_total:
            gap = float(self._rng.exponential(self.syscall_interval))
            chunk = min(gap, self.work_total - emitted)
            yield ("work", chunk)
            emitted += chunk
            if emitted < self.work_total:
                name = self._mix_names[
                    int(self._rng.choice(len(self._mix_names), p=self._mix_probs))
                ]
                yield ("syscall", name)


class ServerLoopExecution(_ScriptedExecution):
    """Endless request-serving loop under a saturating closed-loop client.

    Per request: a short blocking receive (the client round-trip), a
    work burst sampled lognormally around ``request_instr_mean``, optional
    extra mid-request syscalls (e.g. mysql touching storage), and a
    non-blocking send.  ``max_requests`` bounds the script so simulations
    terminate; throughput experiments read :attr:`requests_completed`
    within a measurement window instead of running to completion.
    """

    def __init__(
        self,
        path_model: PathModel,
        request_instr_mean: float = 1.5e5,
        request_instr_sigma: float = 0.35,
        recv_syscall: str = "recvfrom",
        send_syscall: str = "sendto",
        extra_syscalls: Optional[Dict[str, float]] = None,
        max_requests: int = 2_000_000,
        nominal_ips: float = 3.0,
        branch_per_instr: float = 0.16,
        seed: int = 0,
        label: str = "server",
        phase_offset_instr: float = 0.0,
    ):
        self.request_instr_mean = float(request_instr_mean)
        self.request_instr_sigma = float(request_instr_sigma)
        self.recv_syscall = recv_syscall
        self.send_syscall = send_syscall
        #: name -> expected occurrences per request (Poisson-thinned)
        self.extra_syscalls = extra_syscalls or {}
        self.max_requests = max_requests
        self.requests_completed = 0
        super().__init__(
            path_model, nominal_ips, branch_per_instr, seed, label,
            phase_offset_instr=phase_offset_instr,
        )

    def _make_script(self) -> Iterator[ScriptItem]:
        mu = math.log(self.request_instr_mean) - 0.5 * self.request_instr_sigma**2
        for _ in range(self.max_requests):
            yield ("syscall", self.recv_syscall)
            burst = float(self._rng.lognormal(mu, self.request_instr_sigma))
            if self.extra_syscalls:
                # split the burst around mid-request syscalls
                extras = [
                    name
                    for name, rate in self.extra_syscalls.items()
                    if self._rng.random() < rate
                ]
                parts = len(extras) + 1
                for name in extras:
                    yield ("work", burst / parts)
                    yield ("syscall", name)
                yield ("work", burst / parts)
            else:
                yield ("work", burst)
            yield ("syscall", self.send_syscall)
            yield ("request_end", None)

    def _on_item_complete(self, item: ScriptItem) -> None:
        if item[0] == "request_end":
            self.requests_completed += 1
