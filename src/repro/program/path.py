"""Deterministic control-flow path model.

Accuracy experiments compare the path EXIST reconstructs against the path
NHT reconstructs *for the same execution*.  To make that comparison exact
across separate simulation runs, the symbolic control-flow path must be a
pure function of (workload, thread, cumulative progress) — never of
wall-clock timing or of whether a tracer happened to be listening.

:class:`PathModel` therefore precomputes one long Markov walk over the
binary's CFG at construction (seeded), and executions index into it by
cumulative *symbolic event count*: event ``i`` is always
``walk[i % length]``.  A tracing scheme that misses a time range simply
misses a contiguous index range; what it did capture matches the ground
truth bit-for-bit.

Each symbolic event stands for ``stride`` retired branches (the real
branch rate is far too high to materialize per-branch events in Python);
trace-volume accounting multiplies back up, see
:mod:`repro.hwtrace.tracer`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

import numpy as np

from repro.program.binary import Binary
from repro.util.rng import derive_seed

#: default number of precomputed events before the walk repeats
DEFAULT_WALK_LENGTH = 1 << 16
#: default real branches represented by one symbolic event
DEFAULT_STRIDE = 1 << 15


#: bounded LRU of path models keyed by (id(binary), seed, length, stride);
#: each cached model holds a strong reference to its binary, so the id
#: cannot be recycled while its entry is alive
_PATH_CACHE: "OrderedDict[Tuple, PathModel]" = OrderedDict()
_PATH_CACHE_MAX = 64


class PathModel:
    """Precomputed CFG walk with fast per-range aggregation."""

    @classmethod
    def cached(
        cls,
        binary: Binary,
        seed: int = 0,
        length: int = DEFAULT_WALK_LENGTH,
        stride: int = DEFAULT_STRIDE,
    ) -> "PathModel":
        """Memoized constructor.

        The construction walk is the expensive part of spawning a
        workload (a Python loop over the whole cycle); repetitions over
        the same binary/seed reuse one immutable model.
        """
        key = (id(binary), seed, length, stride)
        hit = _PATH_CACHE.get(key)
        if hit is not None and hit.binary is binary:
            _PATH_CACHE.move_to_end(key)
            return hit
        model = cls(binary, seed=seed, length=length, stride=stride)
        _PATH_CACHE[key] = model
        if len(_PATH_CACHE) > _PATH_CACHE_MAX:
            _PATH_CACHE.popitem(last=False)
        return model

    def __init__(
        self,
        binary: Binary,
        seed: int = 0,
        length: int = DEFAULT_WALK_LENGTH,
        stride: int = DEFAULT_STRIDE,
    ):
        if length < 16:
            raise ValueError("walk length too small to be useful")
        self.binary = binary
        self.length = length
        self.stride = stride
        rng = np.random.default_rng(derive_seed(seed, "path", binary.name))

        blocks = binary.blocks
        n_blocks = len(blocks)
        # dense successor tables for the intra-function walk
        succ_targets = []
        succ_cumprobs = []
        for block in blocks:
            targets = np.array([t for t, _ in block.successors], dtype=np.int64)
            probs = np.array([p for _, p in block.successors], dtype=float)
            succ_targets.append(targets)
            succ_cumprobs.append(np.cumsum(probs))
        term_code = {"cond": 0, "call": 1, "indirect": 2, "ret": 3}
        terminators = np.array(
            [term_code[b.terminator] for b in blocks], dtype=np.int8
        )
        return_sites = [b.return_site for b in blocks]
        block_function = np.array([b.function_id for b in blocks], dtype=np.int64)

        # regime-switching walk: visit functions proportionally to their
        # execution weights, dwelling inside each for a sampled number of
        # block steps along its real CFG.  This pins the long-run
        # category/function distribution to the generator's weights (the
        # Figure 21/22 case studies measure these back from traces) while
        # keeping genuine intra-function control-flow structure.
        function_weights = np.array(
            [max(f.weight, 1e-12) for f in binary.functions], dtype=float
        )
        function_weights /= function_weights.sum()
        entries = np.array(
            [f.entry_block for f in binary.functions], dtype=np.int64
        )
        mean_dwell = 24.0

        walk = np.empty(length, dtype=np.int32)
        position = 0
        while position < length:
            function_id = int(rng.choice(len(entries), p=function_weights))
            dwell = 1 + int(rng.geometric(1.0 / mean_dwell))
            current = int(entries[function_id])
            for _ in range(min(dwell, length - position)):
                walk[position] = current
                position += 1
                code = terminators[current]
                if code == 3:  # ret: restart at the function entry
                    current = int(entries[function_id])
                    continue
                if code == 1:  # call: stay in-function via the return site
                    site = return_sites[current]
                    current = (
                        int(site) if site is not None else int(entries[function_id])
                    )
                    continue
                cum = succ_cumprobs[current]
                idx = int(
                    np.searchsorted(cum, rng.random() * cum[-1], side="right")
                )
                if idx >= len(cum):  # numerical edge
                    idx = len(cum) - 1
                nxt = int(succ_targets[current][idx])
                # cond/indirect successors are intra-function by
                # construction, but guard against drifting out
                if int(block_function[nxt]) != function_id:
                    nxt = int(entries[function_id])
                current = nxt

        self.walk = walk
        # doubled copy: any sub-cycle range [start, end) is one contiguous
        # slice of _walk2, so events() returns a view instead of
        # concatenating around the wrap point
        self._walk2 = np.concatenate([walk, walk])
        block_instr = np.array([b.n_instructions for b in blocks], dtype=np.int64)
        block_func = np.array([b.function_id for b in blocks], dtype=np.int32)
        self.event_instructions = block_instr[walk]
        self.event_functions = block_func[walk]
        #: terminator code per event: 0=cond, 1=call, 2=indirect, 3=ret
        self.event_terminators = terminators[walk]
        self._block_visits_prefix = self._prefix_bincount(walk, n_blocks)
        #: fraction of events ending in an indirect branch (TIP-class);
        #: rets count as TNT-class under full RET compression
        self.indirect_fraction = float(np.mean(self.event_terminators == 2))

    @staticmethod
    def _prefix_bincount(walk: np.ndarray, n_blocks: int) -> np.ndarray:
        """Nothing fancy: cumulative visit counts at power-of-two checkpoints
        would be overkill — range queries below recount directly (ranges are
        short relative to the walk)."""
        return np.bincount(walk, minlength=n_blocks)

    # -- range queries ------------------------------------------------------

    def events(self, start: int, end: int) -> np.ndarray:
        """Block ids of events in [start, end) (indices may exceed length)."""
        if end < start:
            raise ValueError("end before start")
        if end - start >= self.length:
            # whole-cycle ranges: return one full cycle (analyses are
            # frequency-based, extra repetitions add no information)
            return self.walk
        lo = start % self.length
        return self._walk2[lo : lo + (end - start)]

    def visit_counts(self, start: int, end: int) -> np.ndarray:
        """Per-block visit counts over event range [start, end)."""
        n_blocks = self.binary.n_blocks
        if end <= start:
            return np.zeros(n_blocks, dtype=np.int64)
        full_cycles, remainder_events = divmod(end - start, self.length)
        counts = full_cycles * self._block_visits_prefix.astype(np.int64)
        if remainder_events:
            counts = counts + np.bincount(
                self.events(start, start + remainder_events), minlength=n_blocks
            )
        return counts

    def function_histogram(self, start: int, end: int) -> Dict[int, float]:
        """Instruction-weighted function occurrence histogram for a range."""
        counts = self.visit_counts(start, end)
        weighted = counts * self.binary.block_instructions
        function_mass = np.bincount(
            self.binary.block_function_ids,
            weights=weighted.astype(np.float64),
            minlength=self.binary.n_functions,
        )
        return {
            int(fid): float(function_mass[fid])
            for fid in np.flatnonzero(function_mass)
        }

    def sample_block(self, event_index: int) -> int:
        """Block executing at a given absolute event index (for samplers)."""
        return int(self.walk[event_index % self.length])

    # -- volume model ---------------------------------------------------------

    def packet_bytes_per_event(
        self, tnt_bytes_per_branch: float, tip_bytes: float
    ) -> float:
        """Average *real* trace bytes one symbolic event represents.

        The stride's worth of real branches behind each event splits into
        conditional branches (TNT bits, ~6 per byte) and indirect branches
        (standalone TIP packets) according to the walk's measured mix.
        """
        ind = self.indirect_fraction
        return self.stride * ((1.0 - ind) * tnt_bytes_per_branch + ind * tip_bytes)
