"""Binary images: functions, basic blocks, and symbol information.

A :class:`Binary` is the static artifact both sides of the tracing
pipeline share: the execution engine walks its control-flow graph, the
hardware tracer encodes block transitions as TIP/TNT packets against its
addresses, and the software decoder maps decoded addresses back to blocks
and functions (exactly the role the program binary plays for libipt).

Functions carry a :class:`FunctionCategory` and a :class:`MemoryProfile`
so the Section 5.4 case-study analyses (memory/synchronization/kernel
function ratios, access-width mix) can be *measured back* from decoded
traces instead of being asserted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class FunctionCategory(enum.Enum):
    """Costly-function taxonomy of the paper's Figure 21.

    Three families (memory, synchronization, kernel) matching the
    categorization of Accelerometer/WSC profiling studies, plus APP for
    business logic that belongs to none of them.
    """

    MEM_JE = "MEM_JE"
    MEM_TC = "MEM_TC"
    MEM_ALLOC = "MEM_ALLOC"
    MEM_FREE = "MEM_FREE"
    MEM_COPY = "MEM_COPY"
    MEM_SET = "MEM_SET"
    MEM_CMP = "MEM_CMP"
    MEM_MOVE = "MEM_MOVE"
    SYNC_ATOMIC = "SYNC_ATOMIC"
    SYNC_SPINLOCK = "SYNC_SPINLOCK"
    SYNC_MUTEX = "SYNC_MUTEX"
    SYNC_CAS = "SYNC_CAS"
    KERNEL_SCHE = "KERNEL_SCHE"
    KERNEL_IRQ = "KERNEL_IRQ"
    KERNEL_NET = "KERNEL_NET"
    APP = "APP"

    @property
    def family(self) -> str:
        """'memory', 'sync', 'kernel', or 'app'."""
        prefix = self.value.split("_", 1)[0]
        return {"MEM": "memory", "SYNC": "sync", "KERNEL": "kernel"}.get(
            prefix, "app"
        )


#: access widths in bytes the Figure 22 analysis distinguishes
ACCESS_WIDTHS = (1, 2, 4, 8)


@dataclass(frozen=True)
class MemoryProfile:
    """Memory-access behaviour of one function.

    ``read_only`` / ``write_only`` / ``read_write`` each map access width
    (bytes) to its share of that access class; shares sum to 1 per class.
    ``accesses_per_instruction`` scales how many accesses the function
    issues.
    """

    read_only: Dict[int, float] = field(default_factory=dict)
    write_only: Dict[int, float] = field(default_factory=dict)
    read_write: Dict[int, float] = field(default_factory=dict)
    accesses_per_instruction: float = 0.35

    def validate(self) -> None:
        """Check each width mix sums to 1 over supported widths."""
        for label, mix in (
            ("read_only", self.read_only),
            ("write_only", self.write_only),
            ("read_write", self.read_write),
        ):
            if not mix:
                continue
            if abs(sum(mix.values()) - 1.0) > 1e-6:
                raise ValueError(f"{label} width mix must sum to 1, got {mix}")
            for width in mix:
                if width not in ACCESS_WIDTHS:
                    raise ValueError(f"unsupported access width {width}")


@dataclass
class BasicBlock:
    """A straight-line code region ending in exactly one branch.

    ``terminator`` is one of:

    * ``cond`` — conditional branch (TNT packet);
    * ``indirect`` — indirect jump (TIP packet);
    * ``call`` — direct call: control moves to a callee entry in
      ``successors`` and returns later to ``return_site`` (direct calls
      emit no IPT packet themselves);
    * ``ret`` — function return: the walk pops the call stack (with full
      RET compression this costs a TNT bit, not a TIP).

    ``successors`` lists reachable block ids with walk probabilities;
    ``ret`` blocks have none (the stack decides).
    """

    block_id: int
    function_id: int
    address: int
    size_bytes: int
    n_instructions: int
    terminator: str
    successors: Tuple[Tuple[int, float], ...] = ()
    #: for ``call`` blocks: where execution resumes after the callee returns
    return_site: Optional[int] = None

    @property
    def end_address(self) -> int:
        return self.address + self.size_bytes


@dataclass
class Function:
    """A named function covering a contiguous range of blocks.

    ``weight`` is the function's share of execution time (set by the
    generator from the category weights); the path model's walk visits
    functions proportionally to it.
    """

    function_id: int
    name: str
    category: FunctionCategory
    entry_block: int
    block_ids: Tuple[int, ...]
    memory: MemoryProfile
    weight: float = 1.0

    @property
    def n_blocks(self) -> int:
        return len(self.block_ids)


class Binary:
    """A synthetic program image with symbol and CFG lookup tables."""

    def __init__(
        self,
        name: str,
        functions: Sequence[Function],
        blocks: Sequence[BasicBlock],
        base_address: int = 0x400000,
        size_bytes: Optional[int] = None,
    ):
        self.name = name
        self.functions: List[Function] = list(functions)
        self.blocks: List[BasicBlock] = list(blocks)
        self.base_address = base_address
        self._by_address: Dict[int, BasicBlock] = {
            block.address: block for block in self.blocks
        }
        if len(self._by_address) != len(self.blocks):
            raise ValueError("duplicate block addresses in binary")
        for block in self.blocks:
            if block.block_id != self.blocks[block.block_id].block_id:
                raise ValueError("block ids must be dense and ordered")
        self.size_bytes = size_bytes or (
            max((b.end_address for b in self.blocks), default=base_address)
            - base_address
        )
        self._block_addresses: Optional[np.ndarray] = None
        self._block_function_ids: Optional[np.ndarray] = None
        self._block_instructions: Optional[np.ndarray] = None

    # -- columnar lookup tables (cached; the codec hot path) ----------------

    @property
    def block_addresses(self) -> np.ndarray:
        """Block start address per block id (int64, index == block_id)."""
        if self._block_addresses is None:
            self._block_addresses = np.fromiter(
                (b.address for b in self.blocks), np.int64, len(self.blocks)
            )
        return self._block_addresses

    @property
    def block_function_ids(self) -> np.ndarray:
        """Owning function id per block id (int64)."""
        if self._block_function_ids is None:
            self._block_function_ids = np.fromiter(
                (b.function_id for b in self.blocks), np.int64, len(self.blocks)
            )
        return self._block_function_ids

    @property
    def block_instructions(self) -> np.ndarray:
        """Instruction count per block id (int64)."""
        if self._block_instructions is None:
            self._block_instructions = np.fromiter(
                (b.n_instructions for b in self.blocks), np.int64, len(self.blocks)
            )
        return self._block_instructions

    # -- lookups -----------------------------------------------------------

    def block(self, block_id: int) -> BasicBlock:
        """The basic block with id ``block_id``."""
        return self.blocks[block_id]

    def block_at(self, address: int) -> BasicBlock:
        """Resolve an exact block start address (decoder entry point)."""
        try:
            return self._by_address[address]
        except KeyError:
            raise KeyError(
                f"address {address:#x} is not a block start in {self.name}"
            ) from None

    def function_of_block(self, block_id: int) -> Function:
        """The function containing block ``block_id``."""
        return self.functions[self.blocks[block_id].function_id]

    def function_by_name(self, name: str) -> Function:
        """Look up a function by its symbol name."""
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(f"no function {name!r} in {self.name}")

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def n_functions(self) -> int:
        return len(self.functions)

    def category_mix(self) -> Dict[FunctionCategory, int]:
        """Static function count per category (not execution-weighted)."""
        mix: Dict[FunctionCategory, int] = {}
        for function in self.functions:
            mix[function.category] = mix.get(function.category, 0) + 1
        return mix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Binary({self.name}, funcs={self.n_functions}, "
            f"blocks={self.n_blocks}, {self.size_bytes} bytes)"
        )
