"""Calibrated workload library (paper Table 1).

Each :class:`WorkloadProfile` is a synthetic stand-in for one of the
paper's evaluated applications: ten SPEC CPU 2017 integer benchmarks,
three online benchmarks (memcached / nginx / mysql), and the Alibaba
production services used in §5.3–§5.4 (Search1/Search2/Cache/Pred/Agent
plus the case-study Matching and Recommend apps).

Calibration targets (documented in EXPERIMENTS.md):

* instruction rates ~2–4 instr/ns and branch densities ~0.10–0.18 per
  instruction so a 0.5 s NHT trace lands in the paper's Table 4 volume
  band (tens of MB for single-threaded compute, ~1 GB for 4-thread xz);
* syscall rates low for compute apps and per-request for online apps, so
  the eBPF baseline's overhead ordering (compute < online) holds;
* Figure 21/22 category and access-width mixes baked into the generated
  binaries so case-study analyses can measure them back from traces.

Profiles are immutable descriptions; ``binary()`` / ``path_model()`` are
memoized per profile, and ``spawn()`` instantiates processes into a
:class:`~repro.kernel.system.KernelSystem`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.program.binary import Binary, FunctionCategory as FC
from repro.program.execution import ProgramExecution, ServerLoopExecution
from repro.program.generator import BinaryShape, generate_binary_cached
from repro.program.path import PathModel
from repro.util.rng import derive_seed
from repro.util.units import SEC


class WorkloadKind(enum.Enum):
    """Coarse workload class: batch compute, online server, cloud service."""

    COMPUTE = "compute"
    ONLINE = "online"
    SERVICE = "service"


class ProvisioningMode(enum.Enum):
    """Paper §3.3: CPU-set pins exclusively; CPU-share maps to a wide set."""

    CPU_SET = "cpu-set"
    CPU_SHARE = "cpu-share"


@dataclass(frozen=True)
class WorkloadProfile:
    """Static description of one application."""

    name: str
    kind: WorkloadKind
    description: str
    n_threads: int = 1
    nominal_ips: float = 3.0
    branch_per_instr: float = 0.13
    llc_pressure: float = 0.3
    provisioning: ProvisioningMode = ProvisioningMode.CPU_SET
    #: CFS weight (cgroup cpu.shares equivalent): latency-critical pods
    #: get more CPU than best-effort ones under contention (Figure 2)
    cpu_weight: int = 1024

    # compute-job parameters
    work_seconds: float = 1.0
    syscall_interval: float = 2.5e6
    syscall_mix: Optional[Dict[str, float]] = None

    # server-loop parameters
    request_instr_mean: float = 1.5e5
    request_instr_sigma: float = 0.35
    extra_syscalls: Optional[Dict[str, float]] = None
    recv_syscall: str = "recvfrom"

    # binary shape
    n_functions: int = 48
    indirect_branch_fraction: float = 0.04
    category_weights: Optional[Dict[FC, float]] = None
    width_mixes: Optional[Dict[str, Dict[int, float]]] = None

    # cluster/RCO metadata (paper §3.4 complexity factors)
    priority: int = 5
    binary_size_mb: float = 20.0
    stability_issues: int = 1
    typical_replicas: int = 4
    #: pod memory request (what the scheduler reserves) and the typical
    #: fraction actually used — Figure 11's allocation-vs-usage gap
    memory_request_mb: float = 4096.0
    memory_usage_fraction: float = 0.45

    # -- derived artifacts -------------------------------------------------------

    def shape(self) -> BinaryShape:
        """The generated binary's structural parameters."""
        return BinaryShape(
            n_functions=self.n_functions,
            indirect_branch_fraction=self.indirect_branch_fraction,
            category_weights=self.category_weights or {FC.APP: 1.0},
            width_mixes=self.width_mixes,
        )

    def binary(self) -> Binary:
        """This workload's synthetic binary (memoized per name)."""
        return _binary_cache(self)

    def path_model(self) -> PathModel:
        """This workload's deterministic path model (memoized)."""
        return _path_cache(self)

    @property
    def work_total(self) -> float:
        """Per-thread compute-job instruction budget (ns of work × rate).

        Threads run concurrently, so a job lasts ``work_seconds`` of wall
        time regardless of thread count (xz's four workers compress four
        streams in parallel, they do not split one stream).
        """
        return self.work_seconds * SEC * self.nominal_ips

    def make_engine(self, thread_index: int, seed: int = 0):
        """Build the execution engine for one thread of this workload.

        Long-running services start each (seed, thread) at a different
        phase of the behaviour cycle — replicas of a production service
        serve different requests, so their traces cover different parts
        of the same behaviour (the Figure 12/20 repetition premise).
        Compute jobs always start at phase 0 (a batch job's execution is
        the same run-to-run).
        """
        label = f"{self.name}/t{thread_index}"
        engine_seed = derive_seed(seed, self.name, thread_index)
        path = self.path_model()
        if self.kind is WorkloadKind.COMPUTE:
            return ProgramExecution(
                path_model=path,
                work_total=self.work_total,
                nominal_ips=self.nominal_ips,
                branch_per_instr=self.branch_per_instr,
                syscall_interval=self.syscall_interval,
                syscall_mix=self.syscall_mix,
                seed=engine_seed,
                label=label,
            )
        cycle_instr = path.length * path.stride / self.branch_per_instr
        offset_fraction = (derive_seed(engine_seed, "phase") % 10_000) / 10_000
        return ServerLoopExecution(
            path_model=path,
            request_instr_mean=self.request_instr_mean,
            request_instr_sigma=self.request_instr_sigma,
            recv_syscall=self.recv_syscall,
            extra_syscalls=self.extra_syscalls,
            nominal_ips=self.nominal_ips,
            branch_per_instr=self.branch_per_instr,
            seed=engine_seed,
            label=label,
            phase_offset_instr=offset_fraction * cycle_instr,
        )

    def spawn(
        self,
        system,
        cpuset: Optional[Sequence[int]] = None,
        seed: int = 0,
        pid: Optional[int] = None,
        tids: Optional[Sequence[int]] = None,
    ):
        """Create a process with this profile's threads inside ``system``.

        ``system`` is a :class:`repro.kernel.system.KernelSystem`; threads
        are admitted to its scheduler immediately.  ``pid``/``tids`` pin
        the process/thread identities instead of drawing the global
        counters — a node rebuilt from its placement spec (in a pool
        worker, or on restart) then produces byte-identical trace output,
        because the CR3 filter value derives from the pid.
        """
        from repro.kernel.task import Process  # local to avoid import cycles

        kwargs = {} if pid is None else {"pid": pid}
        process = Process(
            name=self.name,
            binary=self.binary(),
            llc_pressure=self.llc_pressure,
            **kwargs,
        )
        process.profile = self  # type: ignore[attr-defined]
        for index in range(self.n_threads):
            engine = self.make_engine(index, seed=seed)
            thread = process.new_thread(
                engine,
                cpuset=cpuset,
                weight=self.cpu_weight,
                tid=tids[index] if tids is not None else None,
            )
            system.scheduler.add_thread(thread)
        system.register_process(process)
        return process

    def complexity_score(
        self, weights: Tuple[float, float, float] = (0.5, 0.3, 0.2)
    ) -> float:
        """RCO temporal-decider input: weighted priority/size/stability."""
        w_priority, w_size, w_stability = weights
        return (
            w_priority * (self.priority / 10.0)
            + w_size * min(self.binary_size_mb / 200.0, 1.0)
            + w_stability * min(self.stability_issues / 10.0, 1.0)
        )


def _binary_cache(profile: WorkloadProfile) -> Binary:
    # keyed by (name, shape, seed) in the generator's LRU, so variants
    # that change shape-affecting fields no longer collide on the name
    return generate_binary_cached(profile.name, profile.shape(), seed=1234)


def _path_cache(profile: WorkloadProfile) -> PathModel:
    return PathModel.cached(_binary_cache(profile), seed=1234)


# ---------------------------------------------------------------------------
# category and width mixes
# ---------------------------------------------------------------------------

#: traditional CPU-bound mix: mostly application logic
_COMPUTE_MIX = {
    FC.APP: 0.62,
    FC.MEM_ALLOC: 0.06,
    FC.MEM_FREE: 0.04,
    FC.MEM_COPY: 0.08,
    FC.MEM_CMP: 0.06,
    FC.SYNC_ATOMIC: 0.03,
    FC.KERNEL_SCHE: 0.06,
    FC.KERNEL_IRQ: 0.02,
    FC.KERNEL_NET: 0.03,
}

# §5.4 case-study mixes (approximating the paper's Figure 21 bars):
# Search is CPU-intensive, Cache memory-intensive; the three ML apps
# (Prediction, Matching, Recommend) show heavier KERNEL_IRQ + SYNC_MUTEX.
_SEARCH_MIX = {
    FC.APP: 0.36,
    FC.MEM_JE: 0.03, FC.MEM_TC: 0.02, FC.MEM_ALLOC: 0.07, FC.MEM_FREE: 0.04,
    FC.MEM_COPY: 0.06, FC.MEM_SET: 0.02, FC.MEM_CMP: 0.04, FC.MEM_MOVE: 0.02,
    FC.SYNC_ATOMIC: 0.04, FC.SYNC_SPINLOCK: 0.03, FC.SYNC_MUTEX: 0.05, FC.SYNC_CAS: 0.02,
    FC.KERNEL_SCHE: 0.08, FC.KERNEL_IRQ: 0.04, FC.KERNEL_NET: 0.08,
}
_CACHE_MIX = {
    FC.APP: 0.26,
    FC.MEM_JE: 0.06, FC.MEM_TC: 0.04, FC.MEM_ALLOC: 0.10, FC.MEM_FREE: 0.07,
    FC.MEM_COPY: 0.09, FC.MEM_SET: 0.04, FC.MEM_CMP: 0.05, FC.MEM_MOVE: 0.03,
    FC.SYNC_ATOMIC: 0.03, FC.SYNC_SPINLOCK: 0.02, FC.SYNC_MUTEX: 0.03, FC.SYNC_CAS: 0.02,
    FC.KERNEL_SCHE: 0.05, FC.KERNEL_IRQ: 0.03, FC.KERNEL_NET: 0.08,
}
_PREDICTION_MIX = {
    FC.APP: 0.30,
    FC.MEM_JE: 0.02, FC.MEM_TC: 0.05, FC.MEM_ALLOC: 0.08, FC.MEM_FREE: 0.05,
    FC.MEM_COPY: 0.10, FC.MEM_SET: 0.03, FC.MEM_CMP: 0.03, FC.MEM_MOVE: 0.02,
    FC.SYNC_ATOMIC: 0.02, FC.SYNC_SPINLOCK: 0.02, FC.SYNC_MUTEX: 0.06, FC.SYNC_CAS: 0.02,
    FC.KERNEL_SCHE: 0.06, FC.KERNEL_IRQ: 0.06, FC.KERNEL_NET: 0.08,
}
_MATCHING_MIX = {
    FC.APP: 0.32,
    FC.MEM_JE: 0.03, FC.MEM_TC: 0.04, FC.MEM_ALLOC: 0.07, FC.MEM_FREE: 0.04,
    FC.MEM_COPY: 0.08, FC.MEM_SET: 0.03, FC.MEM_CMP: 0.04, FC.MEM_MOVE: 0.02,
    FC.SYNC_ATOMIC: 0.03, FC.SYNC_SPINLOCK: 0.02, FC.SYNC_MUTEX: 0.07, FC.SYNC_CAS: 0.02,
    FC.KERNEL_SCHE: 0.05, FC.KERNEL_IRQ: 0.07, FC.KERNEL_NET: 0.07,
}
_RECOMMEND_MIX = {
    FC.APP: 0.27,
    FC.MEM_JE: 0.02, FC.MEM_TC: 0.04, FC.MEM_ALLOC: 0.06, FC.MEM_FREE: 0.04,
    FC.MEM_COPY: 0.07, FC.MEM_SET: 0.02, FC.MEM_CMP: 0.03, FC.MEM_MOVE: 0.02,
    FC.SYNC_ATOMIC: 0.03, FC.SYNC_SPINLOCK: 0.02, FC.SYNC_MUTEX: 0.10, FC.SYNC_CAS: 0.03,
    FC.KERNEL_SCHE: 0.06, FC.KERNEL_IRQ: 0.11, FC.KERNEL_NET: 0.08,
}

#: Figure 22: ML apps issue far more 4-byte ("quad-width") accesses,
#: a signature of reduced-precision inference serving
_ML_WIDTHS = {
    "read_only": {1: 0.05, 2: 0.08, 4: 0.62, 8: 0.25},
    "write_only": {1: 0.04, 2: 0.06, 4: 0.58, 8: 0.32},
    "read_write": {1: 0.03, 2: 0.05, 4: 0.55, 8: 0.37},
}
_TRADITIONAL_WIDTHS = {
    "read_only": {1: 0.12, 2: 0.12, 4: 0.28, 8: 0.48},
    "write_only": {1: 0.10, 2: 0.08, 4: 0.25, 8: 0.57},
    "read_write": {1: 0.06, 2: 0.10, 4: 0.30, 8: 0.54},
}


# ---------------------------------------------------------------------------
# profile definitions
# ---------------------------------------------------------------------------

def _spec(name: str, description: str, **overrides) -> WorkloadProfile:
    base = dict(
        kind=WorkloadKind.COMPUTE,
        n_threads=1,
        nominal_ips=3.0,
        branch_per_instr=0.13,
        llc_pressure=0.30,
        work_seconds=1.0,
        syscall_interval=2.5e6,
        n_functions=56,
        category_weights=_COMPUTE_MIX,
        width_mixes=_TRADITIONAL_WIDTHS,
        priority=3,
        binary_size_mb=12.0,
        stability_issues=0,
        typical_replicas=1,
    )
    base.update(overrides)
    return WorkloadProfile(name=name, description=description, **base)


_SPEC_PROFILES = [
    _spec("pb", "600.perlbench_s — Perl interpreter",
          nominal_ips=2.6, branch_per_instr=0.16, indirect_branch_fraction=0.06,
          llc_pressure=0.25, binary_size_mb=18.0),
    _spec("gcc", "602.gcc_s — GNU C compiler",
          nominal_ips=2.4, branch_per_instr=0.17, indirect_branch_fraction=0.05,
          llc_pressure=0.35, n_functions=96, binary_size_mb=65.0),
    _spec("mcf", "605.mcf_s — route planning",
          nominal_ips=1.8, branch_per_instr=0.14, llc_pressure=0.75,
          binary_size_mb=4.0),
    _spec("om", "620.omnetpp_s — discrete event simulation",
          nominal_ips=2.2, branch_per_instr=0.16, indirect_branch_fraction=0.07,
          llc_pressure=0.55, binary_size_mb=28.0),
    _spec("xa", "623.xalancbmk_s — XML to HTML conversion",
          nominal_ips=2.5, branch_per_instr=0.17, indirect_branch_fraction=0.08,
          llc_pressure=0.45, n_functions=80, binary_size_mb=42.0),
    _spec("x264", "625.x264_s — video compression",
          nominal_ips=3.6, branch_per_instr=0.09, llc_pressure=0.30,
          binary_size_mb=8.0),
    _spec("de", "631.deepsjeng_s — alpha-beta tree search",
          nominal_ips=3.0, branch_per_instr=0.15, llc_pressure=0.25,
          binary_size_mb=3.0),
    _spec("le", "641.leela_s — Monte Carlo tree search",
          nominal_ips=2.8, branch_per_instr=0.14, llc_pressure=0.35,
          binary_size_mb=5.0),
    _spec("ex", "648.exchange2_s — recursive solution generator",
          nominal_ips=3.4, branch_per_instr=0.13, llc_pressure=0.15,
          binary_size_mb=2.0),
    _spec("xz", "657.xz_s — general data compression (multi-threaded)",
          n_threads=4, nominal_ips=3.4, branch_per_instr=0.20,
          llc_pressure=0.50, work_seconds=1.0, binary_size_mb=1.5),
]


_ONLINE_PROFILES = [
    WorkloadProfile(
        name="mc", kind=WorkloadKind.ONLINE,
        description="Memcached under memtier (10 clients, 1:1 set/get)",
        n_threads=4, nominal_ips=2.6, branch_per_instr=0.14,
        llc_pressure=0.45, request_instr_mean=1.0e5, request_instr_sigma=0.30,
        recv_syscall="recv_ready",
        n_functions=44, indirect_branch_fraction=0.05,
        category_weights=_CACHE_MIX, width_mixes=_TRADITIONAL_WIDTHS,
        priority=7, binary_size_mb=1.2, stability_issues=2, typical_replicas=8,
        memory_request_mb=8 * 1024, memory_usage_fraction=0.62,
    ),
    WorkloadProfile(
        name="ng", kind=WorkloadKind.ONLINE,
        description="Nginx under ab (10 clients, 20K requests, 20B file)",
        n_threads=4, nominal_ips=2.8, branch_per_instr=0.13,
        llc_pressure=0.25, request_instr_mean=7.0e4, request_instr_sigma=0.25,
        recv_syscall="recv_ready",
        n_functions=40, indirect_branch_fraction=0.05,
        category_weights=_SEARCH_MIX, width_mixes=_TRADITIONAL_WIDTHS,
        priority=6, binary_size_mb=2.5, stability_issues=1, typical_replicas=8,
        memory_request_mb=2 * 1024, memory_usage_fraction=0.30,
    ),
    WorkloadProfile(
        name="ms", kind=WorkloadKind.ONLINE,
        description="Mysql under sysbench (read-write on ten 1M tables)",
        n_threads=4, nominal_ips=2.4, branch_per_instr=0.15,
        llc_pressure=0.55, request_instr_mean=3.5e5, request_instr_sigma=0.45,
        recv_syscall="recv_ready",
        extra_syscalls={"read": 0.25, "write": 0.8, "fsync": 0.05},
        n_functions=72, indirect_branch_fraction=0.06,
        category_weights=_CACHE_MIX, width_mixes=_TRADITIONAL_WIDTHS,
        priority=8, binary_size_mb=180.0, stability_issues=3, typical_replicas=4,
        memory_request_mb=16 * 1024, memory_usage_fraction=0.55,
    ),
]


_REALWORLD_PROFILES = [
    WorkloadProfile(
        name="Search1", kind=WorkloadKind.SERVICE,
        description="Latency-sensitive CPU-set Havenask search service",
        n_threads=4, provisioning=ProvisioningMode.CPU_SET, cpu_weight=4096,
        nominal_ips=2.7, branch_per_instr=0.15, llc_pressure=0.50,
        request_instr_mean=5.0e5, request_instr_sigma=0.40,
        n_functions=120, indirect_branch_fraction=0.06,
        category_weights=_SEARCH_MIX, width_mixes=_TRADITIONAL_WIDTHS,
        priority=9, binary_size_mb=220.0, stability_issues=4, typical_replicas=10,
        memory_request_mb=32 * 1024, memory_usage_fraction=0.48,
    ),
    WorkloadProfile(
        name="Search2", kind=WorkloadKind.SERVICE,
        description="Latency-sensitive CPU-share Havenask search service",
        n_threads=6, provisioning=ProvisioningMode.CPU_SHARE, cpu_weight=4096,
        nominal_ips=2.7, branch_per_instr=0.15, llc_pressure=0.50,
        request_instr_mean=5.0e5, request_instr_sigma=0.40,
        n_functions=120, indirect_branch_fraction=0.06,
        category_weights=_SEARCH_MIX, width_mixes=_TRADITIONAL_WIDTHS,
        priority=9, binary_size_mb=220.0, stability_issues=4, typical_replicas=10,
    ),
    WorkloadProfile(
        name="Cache", kind=WorkloadKind.SERVICE,
        description="Best-effort iGraph memory graph caching service",
        n_threads=4, provisioning=ProvisioningMode.CPU_SHARE, cpu_weight=256,
        nominal_ips=2.2, branch_per_instr=0.13, llc_pressure=0.70,
        request_instr_mean=1.2e5, request_instr_sigma=0.35,
        n_functions=64, indirect_branch_fraction=0.05,
        category_weights=_CACHE_MIX, width_mixes=_TRADITIONAL_WIDTHS,
        priority=4, binary_size_mb=95.0, stability_issues=2, typical_replicas=16,
        memory_request_mb=64 * 1024, memory_usage_fraction=0.58,
    ),
    WorkloadProfile(
        name="Pred", kind=WorkloadKind.SERVICE,
        description="ML-based RTP click-through-rate prediction service",
        n_threads=4, provisioning=ProvisioningMode.CPU_SHARE,
        nominal_ips=3.2, branch_per_instr=0.10, llc_pressure=0.60,
        request_instr_mean=8.0e5, request_instr_sigma=0.50,
        n_functions=88, indirect_branch_fraction=0.05,
        category_weights=_PREDICTION_MIX, width_mixes=_ML_WIDTHS,
        priority=8, binary_size_mb=310.0, stability_issues=5, typical_replicas=12,
        memory_request_mb=48 * 1024, memory_usage_fraction=0.40,
    ),
    WorkloadProfile(
        name="Agent", kind=WorkloadKind.SERVICE,
        description="Node-level SLO management daemon (periodic)",
        n_threads=2, provisioning=ProvisioningMode.CPU_SHARE,
        nominal_ips=2.5, branch_per_instr=0.12, llc_pressure=0.10,
        request_instr_mean=6.0e4, request_instr_sigma=0.60,
        recv_syscall="nanosleep",
        n_functions=36, indirect_branch_fraction=0.04,
        category_weights=_COMPUTE_MIX, width_mixes=_TRADITIONAL_WIDTHS,
        priority=6, binary_size_mb=30.0, stability_issues=1, typical_replicas=1,
        memory_request_mb=1024, memory_usage_fraction=0.35,
    ),
    # §5.4 case-study-only applications
    WorkloadProfile(
        name="Matching", kind=WorkloadKind.SERVICE,
        description="BE-engine product matching service (ML-based)",
        n_threads=4, provisioning=ProvisioningMode.CPU_SHARE,
        nominal_ips=3.0, branch_per_instr=0.11, llc_pressure=0.55,
        request_instr_mean=6.0e5, request_instr_sigma=0.45,
        n_functions=84, indirect_branch_fraction=0.05,
        category_weights=_MATCHING_MIX, width_mixes=_ML_WIDTHS,
        priority=7, binary_size_mb=260.0, stability_issues=3, typical_replicas=10,
        memory_request_mb=40 * 1024, memory_usage_fraction=0.42,
    ),
    WorkloadProfile(
        name="Recommend", kind=WorkloadKind.SERVICE,
        description="MVAP recommendation service (heavily multi-threaded ML)",
        n_threads=8, provisioning=ProvisioningMode.CPU_SHARE,
        nominal_ips=3.1, branch_per_instr=0.11, llc_pressure=0.60,
        request_instr_mean=7.0e5, request_instr_sigma=0.50,
        extra_syscalls={"futex_wait": 0.5, "file_write": 0.08},
        n_functions=96, indirect_branch_fraction=0.05,
        category_weights=_RECOMMEND_MIX, width_mixes=_ML_WIDTHS,
        priority=8, binary_size_mb=340.0, stability_issues=6, typical_replicas=12,
        memory_request_mb=56 * 1024, memory_usage_fraction=0.38,
    ),
]


WORKLOADS: Dict[str, WorkloadProfile] = {
    p.name: p for p in (_SPEC_PROFILES + _ONLINE_PROFILES + _REALWORLD_PROFILES)
}


def get_workload(name: str) -> WorkloadProfile:
    """Look up a profile by Table 1 short name (pb, gcc, ..., Search1)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None


def compute_workloads() -> List[WorkloadProfile]:
    """The ten SPEC-like compute profiles."""
    return [p for p in WORKLOADS.values() if p.kind is WorkloadKind.COMPUTE]


def online_workloads() -> List[WorkloadProfile]:
    """The three online benchmark profiles (mc/ng/ms)."""
    return [p for p in WORKLOADS.values() if p.kind is WorkloadKind.ONLINE]


def realworld_workloads(include_case_study: bool = False) -> List[WorkloadProfile]:
    """The five evaluated cloud services (plus the §5.4-only apps)."""
    names = ["Search1", "Search2", "Cache", "Pred", "Agent"]
    if include_case_study:
        names += ["Matching", "Recommend"]
    return [WORKLOADS[n] for n in names]


def variant(profile: WorkloadProfile, **overrides) -> WorkloadProfile:
    """A copy of ``profile`` with fields overridden (kept out of WORKLOADS).

    Binary/path memoization keys on (name, shape, seed), so a variant
    shares the base profile's cached artifacts exactly when its shape is
    unchanged — shape-affecting overrides get their own cache entries.
    """
    return replace(profile, **overrides)
