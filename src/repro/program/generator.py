"""Synthetic binary generation.

Given a :class:`BinaryShape` (function count, block fan-out, category and
memory mixes) and a seed, :func:`generate_binary` produces a
:class:`~repro.program.binary.Binary` whose *execution-weighted* behaviour
matches the requested mixes: the CFG walk visits functions proportionally
to their category weight, so analyses over decoded traces recover the mix.

Generation is fully deterministic in (name, shape, seed).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.program.binary import (
    ACCESS_WIDTHS,
    BasicBlock,
    Binary,
    Function,
    FunctionCategory,
    MemoryProfile,
)
from repro.util.rng import derive_seed


@dataclass
class BinaryShape:
    """Knobs controlling the generated program's static structure.

    ``category_weights`` gives each function category its share of
    *execution time* (the CFG transition matrix is biased accordingly);
    categories absent from the map get no functions.  ``width_mixes``
    optionally overrides the access-width distributions per access class
    (defaults follow traditional CPU workloads: mostly 4/8-byte).
    """

    n_functions: int = 40
    blocks_per_function_mean: float = 8.0
    instructions_per_block_mean: float = 12.0
    indirect_branch_fraction: float = 0.15
    call_fraction: float = 0.20
    category_weights: Dict[FunctionCategory, float] = field(
        default_factory=lambda: {FunctionCategory.APP: 1.0}
    )
    width_mixes: Optional[Dict[str, Dict[int, float]]] = None
    accesses_per_instruction: float = 0.35

    def cache_key(self) -> Tuple:
        """Hashable identity of the shape (dict fields canonicalized).

        Two shapes with equal cache keys generate identical binaries for
        the same (name, seed) — the memoization key of
        :func:`generate_binary_cached`.
        """
        widths = None
        if self.width_mixes is not None:
            widths = tuple(
                sorted(
                    (klass, tuple(sorted(mix.items())))
                    for klass, mix in self.width_mixes.items()
                )
            )
        return (
            self.n_functions,
            self.blocks_per_function_mean,
            self.instructions_per_block_mean,
            self.indirect_branch_fraction,
            self.call_fraction,
            tuple(sorted((c.value, w) for c, w in self.category_weights.items())),
            widths,
            self.accesses_per_instruction,
        )


_DEFAULT_WIDTH_MIXES: Dict[str, Dict[int, float]] = {
    "read_only": {1: 0.10, 2: 0.10, 4: 0.45, 8: 0.35},
    "write_only": {1: 0.08, 2: 0.07, 4: 0.45, 8: 0.40},
    "read_write": {1: 0.05, 2: 0.10, 4: 0.45, 8: 0.40},
}


def _normalized(mix: Dict[int, float]) -> Dict[int, float]:
    total = sum(mix.values())
    if total <= 0:
        raise ValueError(f"width mix has no mass: {mix}")
    return {w: v / total for w, v in mix.items() if w in ACCESS_WIDTHS}


def generate_binary(name: str, shape: BinaryShape, seed: int = 0) -> Binary:
    """Generate a deterministic synthetic binary.

    Functions are laid out contiguously from ``0x400000``; block sizes and
    instruction counts are sampled around the shape's means; each block's
    successors prefer intra-function targets, with call edges biased by
    ``category_weights`` so hot categories are visited proportionally.
    """
    rng = np.random.default_rng(derive_seed(seed, "binary", name))
    categories = list(shape.category_weights)
    weights = np.array([shape.category_weights[c] for c in categories], dtype=float)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("category weights must be non-negative with positive sum")
    weights = weights / weights.sum()

    width_mixes = dict(_DEFAULT_WIDTH_MIXES)
    if shape.width_mixes:
        width_mixes.update(shape.width_mixes)
    width_mixes = {k: _normalized(v) for k, v in width_mixes.items()}

    # assign categories to functions: at least one function per category
    # with positive weight, remainder sampled by weight
    n_functions = max(shape.n_functions, len(categories))
    function_categories: List[FunctionCategory] = list(categories)
    extra = n_functions - len(categories)
    if extra > 0:
        picks = rng.choice(len(categories), size=extra, p=weights)
        function_categories.extend(categories[i] for i in picks)
    rng.shuffle(function_categories)  # type: ignore[arg-type]

    functions: List[Function] = []
    blocks: List[BasicBlock] = []
    address = 0x400000
    function_entry_blocks: List[int] = []

    for function_id, category in enumerate(function_categories):
        n_blocks = max(3, int(rng.poisson(shape.blocks_per_function_mean)))
        block_ids = []
        for position in range(n_blocks):
            n_instr = max(3, int(rng.poisson(shape.instructions_per_block_mean)))
            size = n_instr * int(rng.integers(3, 6))
            if position == n_blocks - 1:
                terminator = "ret"  # every function ends in a return
            else:
                draw = rng.random()
                if draw < shape.indirect_branch_fraction:
                    terminator = "indirect"
                elif draw < shape.indirect_branch_fraction + shape.call_fraction:
                    terminator = "call"
                else:
                    terminator = "cond"
            block = BasicBlock(
                block_id=len(blocks),
                function_id=function_id,
                address=address,
                size_bytes=size,
                n_instructions=n_instr,
                terminator=terminator,
            )
            blocks.append(block)
            block_ids.append(block.block_id)
            address += size
        memory = MemoryProfile(
            read_only=width_mixes["read_only"],
            write_only=width_mixes["write_only"],
            read_write=width_mixes["read_write"],
            accesses_per_instruction=shape.accesses_per_instruction,
        )
        memory.validate()
        functions.append(
            Function(
                function_id=function_id,
                name=f"{name}::{category.value.lower()}_{function_id}",
                category=category,
                entry_block=block_ids[0],
                block_ids=tuple(block_ids),
                memory=memory,
            )
        )
        function_entry_blocks.append(block_ids[0])
        address += int(rng.integers(16, 64))  # inter-function padding

    # execution weight: each category's share splits evenly across its
    # functions, so the *aggregate* execution time per category matches
    # the requested weights regardless of how many functions it got
    category_weight = dict(zip(categories, weights))
    category_counts: Dict[FunctionCategory, int] = {}
    for function in functions:
        category_counts[function.category] = (
            category_counts.get(function.category, 0) + 1
        )
    function_weights = np.array(
        [
            category_weight[f.category] / category_counts[f.category]
            for f in functions
        ],
        dtype=float,
    )
    function_weights /= function_weights.sum()
    for function, weight in zip(functions, function_weights):
        function.weight = float(weight)

    # wire successors: conditional branches loop within the function
    # (biased forward so the walk eventually reaches the ret), calls
    # target other functions' entries by execution weight and record
    # their return site, rets are resolved by the walk's call stack
    for function in functions:
        ids = function.block_ids
        for position, block_id in enumerate(ids):
            block = blocks[block_id]
            nxt = ids[min(position + 1, len(ids) - 1)]
            if block.terminator == "ret":
                block.successors = ()
                continue
            succs: List[Tuple[int, float]]
            if block.terminator == "cond":
                # taken → a random intra-function target (possibly a back
                # edge), not-taken → fallthrough; bias forward progress
                target = ids[int(rng.integers(0, len(ids)))]
                taken_p = float(rng.uniform(0.2, 0.6))
                succs = [(target, taken_p), (nxt, 1.0 - taken_p)]
            elif block.terminator == "call":
                n_targets = min(3, len(functions))
                target_funcs = rng.choice(
                    len(functions), size=n_targets, replace=False, p=function_weights
                )
                succs = [
                    (function_entry_blocks[int(fid)], 1.0 / n_targets)
                    for fid in target_funcs
                ]
                block.return_site = nxt
            else:  # indirect: computed jump within the function
                n_targets = min(4, len(ids))
                targets = rng.choice(len(ids), size=n_targets, replace=False)
                probs = rng.dirichlet(np.ones(n_targets))
                succs = [
                    (ids[int(t)], float(p)) for t, p in zip(targets, probs)
                ]
            total = sum(p for _, p in succs)
            block.successors = tuple((t, p / total) for t, p in succs)

    return Binary(name=name, functions=functions, blocks=blocks)


#: bounded LRU of generated binaries keyed by (name, shape.cache_key(), seed)
_BINARY_CACHE: "OrderedDict[Tuple, Binary]" = OrderedDict()
_BINARY_CACHE_MAX = 64


def generate_binary_cached(name: str, shape: BinaryShape, seed: int = 0) -> Binary:
    """Memoized :func:`generate_binary`.

    Generation is deterministic in (name, shape, seed), and a matrix of
    repetitions regenerates the same few binaries thousands of times —
    this returns the *same object*, which also lets downstream
    ``id(binary)``-keyed caches (decoders, path models) hit.  Bounded LRU;
    callers that mutate binaries must use :func:`generate_binary`.
    """
    key = (name, shape.cache_key(), seed)
    cached = _BINARY_CACHE.get(key)
    if cached is not None:
        _BINARY_CACHE.move_to_end(key)
        return cached
    binary = generate_binary(name, shape, seed)
    _BINARY_CACHE[key] = binary
    if len(_BINARY_CACHE) > _BINARY_CACHE_MAX:
        _BINARY_CACHE.popitem(last=False)
    return binary


def execution_weighted_categories(
    binary: Binary, block_visit_counts: Sequence[int]
) -> Dict[FunctionCategory, float]:
    """Instruction-weighted category shares for a visit-count vector.

    Helper shared by tests and the case-study analysis: multiplies visit
    counts by per-block instruction counts and aggregates per category.
    """
    totals: Dict[FunctionCategory, float] = {}
    for block_id, visits in enumerate(block_visit_counts):
        if not visits:
            continue
        block = binary.block(block_id)
        category = binary.functions[block.function_id].category
        totals[category] = totals.get(category, 0.0) + visits * block.n_instructions
    grand = sum(totals.values())
    if grand <= 0:
        return {}
    return {c: v / grand for c, v in totals.items()}
