"""EXIST reproduction: extremely efficient intra-service tracing.

A full-system Python reproduction of *EXIST: Enabling Extremely Efficient
Intra-Service Tracing Observability in Datacenters* (ASPLOS 2025) on a
simulated datacenter substrate.  See DESIGN.md for the system inventory
and EXPERIMENTS.md for the paper-vs-measured record.

Quick start::

    from repro import run_compute_slowdown
    slowdowns = run_compute_slowdown("om", cpuset=[0, 1, 2, 3])
    assert slowdowns["EXIST"] < slowdowns["NHT"]

Package map:

* :mod:`repro.core` — EXIST itself (OTC / UMA / RCO, facility, scheme);
* :mod:`repro.tracing` — the Table 2 baselines (Oracle/StaSam/eBPF/NHT);
* :mod:`repro.hwtrace` — the simulated Intel PT substrate;
* :mod:`repro.kernel` — the discrete-event OS/node simulator;
* :mod:`repro.program` — synthetic binaries and the workload library;
* :mod:`repro.cluster` — Kubernetes-style orchestration and storage;
* :mod:`repro.services` — microservice queueing for end-to-end latency;
* :mod:`repro.analysis` — decoding, accuracy metrics, case studies;
* :mod:`repro.experiments` — scenario harnesses used by ``benchmarks/``.
"""

from repro.core import ExistConfig, ExistScheme, TraceReason, TracingRequest
from repro.core.facility import ExistFacility
from repro.experiments import (
    make_scheme,
    run_compute_slowdown,
    run_online_throughput,
    run_traced_execution,
)
from repro.kernel.system import KernelSystem, SystemConfig
from repro.program.workloads import WORKLOADS, get_workload
from repro.tracing import EbpfScheme, NhtScheme, OracleScheme, StaSamScheme

__version__ = "1.0.0"

__all__ = [
    "ExistConfig",
    "ExistScheme",
    "ExistFacility",
    "TraceReason",
    "TracingRequest",
    "run_compute_slowdown",
    "run_online_throughput",
    "run_traced_execution",
    "make_scheme",
    "KernelSystem",
    "SystemConfig",
    "WORKLOADS",
    "get_workload",
    "OracleScheme",
    "StaSamScheme",
    "EbpfScheme",
    "NhtScheme",
    "__version__",
]
