"""Command-line interface: ``python -m repro <command>``.

The configuration-interface face of the reproduction (the paper's
"easy-to-use interface" through which developers and engineers trigger
tracing, §3.1/§4), plus inspection commands for the workload library and
scheme comparisons.

Commands:

* ``workloads`` — list the Table 1 workload library;
* ``trace``     — run one EXIST session against a workload and summarize
  what was captured (optionally decode the hottest functions);
* ``compare``   — run several schemes on one workload and print the
  overhead/space comparison;
* ``cluster``   — deploy an app on a small cluster and reconcile a
  TraceTask CRD through the full control/data flow (optionally under an
  injected ``--faults`` plan, printing the degradation summary);
* ``chaos-sweep`` — run the seeded chaos scenario across fault seeds and
  aggregate the graceful-degradation accounting;
* ``profile``   — run any other repro command under cProfile and report
  the top-N cumulative hotspots (optionally as JSON), so perf PRs start
  from data;
* ``staticcheck`` — run the ``existcheck`` determinism & simulation-purity
  analyzer (EX001..EX006) over the source tree against the committed
  baseline.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.reconstruct import reconstruct
from repro.analysis.tables import format_table
from repro.experiments.scenarios import SCHEME_FACTORIES, SCHEME_ORDER
from repro.program.workloads import WORKLOADS, get_workload
from repro.util.units import MIB, MSEC, fmt_bytes, fmt_time


def _cmd_workloads(args: argparse.Namespace) -> int:
    rows = []
    for name, profile in sorted(WORKLOADS.items(), key=lambda kv: kv[0].lower()):
        rows.append([
            name,
            profile.kind.value,
            profile.n_threads,
            profile.provisioning.value,
            profile.description,
        ])
    print(format_table(
        rows,
        headers=["name", "kind", "threads", "provisioning", "description"],
        title="Workload library (paper Table 1)",
    ))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.exist import ExistScheme
    from repro.kernel.system import KernelSystem, SystemConfig
    from repro.util.units import SEC

    profile = get_workload(args.workload)
    system = KernelSystem(SystemConfig.small_node(args.cores, seed=args.seed))
    cpuset = list(range(min(4, args.cores)))
    target = profile.spawn(system, cpuset=cpuset, seed=args.seed)
    scheme = ExistScheme(period_ns=args.period_ms * MSEC, continuous=False)
    scheme.install(system, [target])
    if profile.kind.value == "compute":
        system.run_until_done([target], deadline_ns=30 * SEC)
    else:
        system.run_for((args.period_ms + 100) * MSEC)
    artifacts = scheme.artifacts()

    assert scheme.facility is not None and scheme.facility.completed
    session = scheme.facility.completed[0].session
    ops = scheme.facility.otc.session_msr_operations(session)
    print(f"traced {profile.name} for {fmt_time(session.period_ns)}")
    print(f"  segments:       {len(artifacts.segments)}")
    print(f"  trace volume:   {fmt_bytes(int(artifacts.space_bytes))}")
    print(f"  sched records:  {len(artifacts.sched_records)}")
    print(f"  MSR operations: {ops} "
          f"(vs {system.scheduler.total_context_switches} context switches)")

    if args.report:
        from repro.analysis.report import build_session_report

        print()
        print(build_session_report(artifacts, target))
    elif args.top:
        result = reconstruct(artifacts.segments, [target])
        histogram = result.function_histogram(target.binary)
        rows = sorted(histogram.items(), key=lambda kv: -kv[1])[: args.top]
        print(format_table(
            [[name, count] for name, count in rows],
            headers=["function", "occurrences"],
            title=f"top {args.top} functions "
                  f"({len(result.decoded)} decoded block executions)",
        ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.parallel.matrix import MatrixCell, run_matrix

    profile = get_workload(args.workload)
    cells = [
        MatrixCell(
            workload=args.workload,
            scheme=name,
            seed=args.seed,
            cpuset=(0, 1, 2, 3),
            window_s=args.window_s,
        )
        for name in args.schemes
    ]
    results = run_matrix(cells, jobs=args.jobs)
    rows = []
    baseline = None
    for name, result in zip(args.schemes, results):
        metric = result.metric
        if baseline is None:
            baseline = metric
        rows.append([
            name,
            f"{(baseline - metric) / baseline:.2%}",
            result.wrmsr_ops,
            f"{result.space_bytes / MIB:.1f} MiB",
        ])
    print(format_table(
        rows,
        headers=["scheme", "overhead", "WRMSRs", "trace space"],
        title=f"scheme comparison on {profile.name} — {profile.description}",
    ))
    return 0


def _cache_stats_line(stats) -> str:
    """One-line decode-cache summary for CLI output."""
    line = (
        f"decode cache: {stats['hits']} hits / {stats['misses']} misses "
        f"({stats['hit_rate']:.1%} hit rate, "
        f"{fmt_bytes(stats['bytes_saved'])} re-decode avoided)"
    )
    if stats["fallbacks"]:
        # corrupt / non-canonical streams bypass the cache entirely
        line += f", {stats['fallbacks']} fallbacks"
    return line


def _stream_stats_line(stream: dict) -> str:
    """One-line streaming-ingest summary for CLI output."""
    line = (
        f"streaming: {stream['chunks']} chunks / {stream['uploads']} uploads, "
        f"p99 lag {fmt_time(stream['p99_lag_ns'])}, "
        f"depth<= {stream['max_queue_depth']}, "
        f"{stream['backpressure_engagements']} backpressure engagements"
    )
    if stream["dead_letters"]:
        line += (
            f", {stream['dead_letters']} dead-lettered"
            f" ({stream['dead_letters_replayed']} replayed)"
        )
    return line


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterMaster, TraceTaskSpec
    from repro.core.config import TraceReason
    from repro.faults import FaultPlan

    plan = None
    if args.faults:
        plan = FaultPlan.parse(args.faults, seed=args.fault_seed)
        if not plan:
            plan = None
    master = ClusterMaster(seed=args.seed, decode_cache=args.decode_cache)
    # lazy bulk registration: only traced nodes materialize, so --nodes
    # scales to the thousands without paying per-node kernel builds
    master.add_nodes(args.nodes)
    master.deploy(args.app, replicas=args.replicas)
    task = master.submit(TraceTaskSpec(
        app=args.app,
        reason=TraceReason(args.reason),
        period_ns=args.period_ms * MSEC,
        max_repetitions=args.max_repetitions,
        shards=args.shards,
    ))
    if args.jobs and args.jobs > 1:
        from repro.parallel import RunPool

        with RunPool(max_workers=args.jobs) as pool:
            master.reconcile(
                task, pool=pool, faults=plan, streaming=args.streaming
            )
    else:
        master.reconcile(task, faults=plan, streaming=args.streaming)
    print(f"task {task.name}: {task.status.phase.value}")
    print(f"  control shards:     {task.status.shards}")
    print(f"  repetitions traced: {task.status.sessions_completed}/{args.replicas}")
    print(f"  period:             {fmt_time(task.status.period_ns)}")
    print(f"  captured:           {fmt_bytes(int(task.status.bytes_captured))}")
    print(f"  object-store keys:  {len(task.status.trace_keys)}")
    rows = master.sessions_for(task)
    print(format_table(
        [[r["pod"], r["node"], r["records"], r["functions"]] for r in rows],
        headers=["pod", "node", "decoded records", "functions"],
        title="structured-store rows",
    ))
    report = task.status.degradation
    if report is not None and (plan is not None or report.degraded):
        print(f"degradation: {report.summary()}")
    if args.degradation_json and report is not None:
        with open(args.degradation_json, "w") as handle:
            handle.write(report.to_json())
            handle.write("\n")
        print(f"degradation report written to {args.degradation_json}")
    stream = task.status.stream
    if stream is not None:
        print(_stream_stats_line(stream))
    # decode_cache_stats() is all-zero (never None) when caching is off
    print(_cache_stats_line(master.decode_cache_stats()))
    footprint = master.management_footprint()
    print(f"management pod: {footprint.cpu_cores:.1e} cores, "
          f"{footprint.memory_mb:.0f} MB")
    return 0


def _cmd_chaos_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.scenarios import chaos_sweep

    sweep = chaos_sweep(
        fault_seeds=list(range(args.seeds)),
        faults=args.faults,
        app=args.app,
        nodes=args.nodes,
        replicas=args.replicas,
        seed=args.seed,
        jobs=args.jobs,
        decode_cache=args.decode_cache,
        streaming=args.streaming,
    )
    phases = ", ".join(
        f"{phase}={count}" for phase, count in sorted(sweep["phases"].items())
    )
    print(f"chaos sweep: {args.seeds} seeds of '{sweep['faults']}'")
    print(f"  phases:         {phases}")
    print(f"  mean coverage:  {sweep['mean_coverage_fraction']:.1%}")
    print(f"  bytes dropped:  {fmt_bytes(sweep['total_bytes_dropped'])}")
    if args.decode_cache:
        from repro.hwtrace.cache import process_decode_cache

        # every run's master shares the process-wide cache, so hits
        # accumulate across seeds — exactly the repetition premise
        print("  " + _cache_stats_line(process_decode_cache().stats()))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(sweep, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"sweep report written to {args.json}")
    return 0


def _cmd_services_campaign(args: argparse.Namespace) -> int:
    import time

    from repro.services.workloads import (
        SCENARIO_PRESETS,
        SERVICE_WORKLOADS,
        CampaignSpec,
        campaign_report_json,
        run_campaign,
    )

    spec = CampaignSpec(
        workload=args.workload,
        n_requests=args.requests,
        utilization=args.utilization,
        seed=args.seed,
        scenario=args.scenario,
        inflation=args.inflation,
        traced_service=args.traced or None,
        partition_requests=args.partition_requests,
    )
    # wall-clock timing of the simulation itself (spans/s is the
    # engine-throughput headline, not part of the simulated results)
    t0 = time.perf_counter()
    report = run_campaign(spec, jobs=args.jobs)
    elapsed = time.perf_counter() - t0

    workload = SERVICE_WORKLOADS[args.workload]
    scenario = SCENARIO_PRESETS[args.scenario]
    print(f"campaign: {spec.n_requests:,} requests of '{workload.name}' "
          f"({workload.description})")
    print(f"  scenario:   {scenario.name}  "
          f"(partitions={report['partitions']}, jobs={args.jobs}, "
          f"retries={report['retry_requests']})")
    rows = []
    for scheme, m in report["schemes"].items():
        rows.append([
            scheme,
            f"{m['throughput_rps']:,.0f}",
            f"{m['p50_ms']:.3f}",
            f"{m['p99_ms']:.3f}",
            f"{m['p999_ms']:.3f}",
            f"{m['spans']:,}",
        ])
    print(format_table(
        rows,
        headers=["scheme", "rps", "p50 ms", "p99 ms", "p99.9 ms", "spans"],
        title="merged campaign results",
    ))
    if "degradation" in report:
        deg = report["degradation"]
        print(f"degradation from {report['inflation']:.3f}x inflation on "
              f"'{report['traced_service']}': "
              + ", ".join(f"{k[:-3]} {v:+.2%}" for k, v in deg.items()))
    culprit = report["schemes"]["baseline"].get("sampled_culprit")
    if culprit:
        print(f"sampled culprit service: {culprit}")
    spans = report["spans_simulated"]
    print(f"engine: {spans:,} spans in {elapsed:.2f}s wall = "
          f"{spans / elapsed:,.0f} spans/s")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(campaign_report_json(report))
        print(f"campaign report written to {args.json}")
    return 0


def _cmd_staticcheck(args: argparse.Namespace) -> int:
    from repro.staticcheck.main import run as run_staticcheck

    return run_staticcheck(args)


def _cmd_profile(args: argparse.Namespace) -> int:
    """cProfile wrapper around any other CLI invocation.

    ``repro profile -- trace Search1 --top 0`` runs the wrapped command
    under cProfile and prints (and optionally writes as JSON) the top-N
    hotspots by cumulative time — so perf work starts from measured
    hotspots instead of guesses.
    """
    import cProfile
    import io
    import json
    import pstats

    wrapped = list(args.wrapped)
    if wrapped and wrapped[0] == "--":
        wrapped = wrapped[1:]
    if not wrapped:
        print("profile: no wrapped command given "
              "(try: repro profile -- trace Search1)", file=sys.stderr)
        return 2
    if wrapped[0] == "profile":
        print("profile: refusing to profile itself", file=sys.stderr)
        return 2

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        exit_code = main(wrapped)
    finally:
        profiler.disable()

    stats = pstats.Stats(profiler, stream=io.StringIO())
    stats.sort_stats("cumulative")
    hotspots = []
    for func, (ncalls, _primitive, tottime, cumtime, _callers) in sorted(
        stats.stats.items(), key=lambda kv: -kv[1][3]
    ):
        file_name, line, function = func
        # profiler bookkeeping frames are noise, not hotspots
        if function in ("<built-in method builtins.exec>", "enable"):
            continue
        hotspots.append({
            "function": function,
            "file": file_name,
            "line": line,
            "ncalls": ncalls,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        })
        if len(hotspots) >= args.top:
            break

    print()
    print(format_table(
        [
            [
                h["function"][:48],
                f"{h['file'].rsplit('/', 1)[-1]}:{h['line']}",
                h["ncalls"],
                f"{h['tottime']:.4f}",
                f"{h['cumtime']:.4f}",
            ]
            for h in hotspots
        ],
        headers=["function", "where", "calls", "tottime", "cumtime"],
        title=f"top {args.top} hotspots of: repro {' '.join(wrapped)}",
    ))
    if args.json:
        report = {
            "command": wrapped,
            "exit_code": exit_code,
            "hotspots": hotspots,
        }
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"profile written to {args.json}")
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EXIST reproduction — simulated intra-service tracing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the workload library")

    trace = sub.add_parser("trace", help="run one EXIST session")
    trace.add_argument("workload", choices=sorted(WORKLOADS))
    trace.add_argument("--period-ms", type=int, default=500)
    trace.add_argument("--cores", type=int, default=8)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--top", type=int, default=5,
                       help="decode and show the N hottest functions (0=off)")
    trace.add_argument("--report", action="store_true",
                       help="print the full markdown session report")

    compare = sub.add_parser("compare", help="compare tracing schemes")
    compare.add_argument("workload", choices=sorted(WORKLOADS))
    compare.add_argument(
        "--schemes", nargs="+", default=list(SCHEME_ORDER),
        choices=sorted(SCHEME_FACTORIES),
    )
    compare.add_argument("--window-s", type=float, default=0.2)
    compare.add_argument("--seed", type=int, default=7)
    compare.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the scheme runs")

    cluster = sub.add_parser("cluster", help="reconcile a TraceTask CRD")
    cluster.add_argument("--app", default="Search1", choices=sorted(WORKLOADS))
    cluster.add_argument("--nodes", type=int, default=3)
    cluster.add_argument("--replicas", type=int, default=3)
    cluster.add_argument("--period-ms", type=int, default=150)
    cluster.add_argument(
        "--reason", default="anomaly", choices=["anomaly", "profiling", "user"]
    )
    cluster.add_argument("--seed", type=int, default=7)
    cluster.add_argument("--jobs", type=int, default=1,
                         help="worker processes the reconcile shards over")
    cluster.add_argument(
        "--shards", type=int, default=None,
        help="control-plane shard count (default: derived from --jobs)",
    )
    cluster.add_argument(
        "--max-repetitions", type=int, default=None,
        help="cap traced repetitions (default: RCO's spatial sampler)",
    )
    cluster.add_argument(
        "--faults", default="",
        help="fault plan: preset name ('chaos') or comma-separated "
             "kind[:magnitude][@at_fraction][/target] specs",
    )
    cluster.add_argument("--fault-seed", type=int, default=0,
                         help="seed for the fault plan's randomness")
    cluster.add_argument(
        "--degradation-json", default="",
        help="write the task's DegradationReport JSON to this path",
    )
    cluster.add_argument(
        "--decode-cache", action=argparse.BooleanOptionalAction, default=True,
        help="repetition-aware decode cache for the reconcile decode",
    )
    cluster.add_argument(
        "--streaming", action="store_true",
        help="decode through the online streaming-ingest pipeline "
             "(bounded queue, backpressure, dead-letter quarantine); "
             "end state is byte-identical to batch decode",
    )

    chaos = sub.add_parser(
        "chaos-sweep",
        help="run the seeded chaos scenario across fault seeds",
    )
    chaos.add_argument("--app", default="Search1", choices=sorted(WORKLOADS))
    chaos.add_argument("--faults", default="chaos",
                       help="fault plan (preset or spec string)")
    chaos.add_argument("--seeds", type=int, default=3,
                       help="number of fault seeds to sweep (0..N-1)")
    chaos.add_argument("--nodes", type=int, default=3)
    chaos.add_argument("--replicas", type=int, default=None,
                       help="pods of the app (default: one per node)")
    chaos.add_argument("--seed", type=int, default=11,
                       help="cluster/workload seed")
    chaos.add_argument("--jobs", type=int, default=1,
                       help="worker processes for trace decoding")
    chaos.add_argument("--json", default="",
                       help="write the sweep report JSON to this path")
    chaos.add_argument(
        "--decode-cache", action=argparse.BooleanOptionalAction, default=True,
        help="repetition-aware decode cache shared across the sweep's runs",
    )
    chaos.add_argument(
        "--streaming", action="store_true",
        help="reconcile every seeded run through the streaming-ingest "
             "pipeline (results identical to batch decode)",
    )
    campaign = sub.add_parser(
        "services-campaign",
        help="drive a sharded million-RPC campaign through the "
             "vectorized service engine",
    )
    from repro.services.workloads import SCENARIO_PRESETS, SERVICE_WORKLOADS

    campaign.add_argument("--workload", default="ecommerce",
                          choices=sorted(SERVICE_WORKLOADS))
    campaign.add_argument("--requests", type=int, default=100_000,
                          help="total requests across all partitions")
    campaign.add_argument("--utilization", type=float, default=0.7,
                          help="bottleneck utilization of the load point")
    campaign.add_argument("--scenario", default="steady",
                          choices=sorted(SCENARIO_PRESETS))
    campaign.add_argument("--inflation", type=float, default=1.0,
                          help="tracing inflation of the traced scheme "
                               "(1.0 skips the traced run)")
    campaign.add_argument("--traced", default="",
                          help="service to trace (default: the workload's)")
    campaign.add_argument("--seed", type=int, default=7)
    campaign.add_argument("--jobs", type=int, default=1,
                          help="worker processes the partitions shard over "
                               "(report is identical for any jobs width)")
    campaign.add_argument("--partition-requests", type=int, default=8192,
                          help="requests per fleet-cell partition")
    campaign.add_argument("--json", default="",
                          help="write the canonical campaign report JSON")

    profile = sub.add_parser(
        "profile",
        help="run any repro command under cProfile and report hotspots",
    )
    profile.add_argument("--top", type=int, default=20,
                         help="number of hotspots to report")
    profile.add_argument("--json", default="",
                         help="write the hotspot report JSON to this path")
    profile.add_argument(
        "wrapped", nargs=argparse.REMAINDER,
        help="the repro command to profile (prefix with -- )",
    )

    staticcheck = sub.add_parser(
        "staticcheck",
        help="existcheck — determinism & simulation-purity analyzer",
    )
    from repro.staticcheck.main import add_arguments as _staticcheck_arguments

    _staticcheck_arguments(staticcheck)
    return parser


_COMMANDS = {
    "workloads": _cmd_workloads,
    "trace": _cmd_trace,
    "compare": _cmd_compare,
    "cluster": _cmd_cluster,
    "chaos-sweep": _cmd_chaos_sweep,
    "services-campaign": _cmd_services_campaign,
    "profile": _cmd_profile,
    "staticcheck": _cmd_staticcheck,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
