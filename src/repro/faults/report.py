"""Honest accounting of degraded tracing results.

EXIST never pretends a partial trace is a full one: stop-on-full buffers
drop tails by design, replica sampling merges whatever delivered, and the
resilient decoder resyncs past corruption.  The
:class:`DegradationReport` rolls all of that loss into one structure the
master attaches to every reconciled task, so a consumer can tell a clean
result from a degraded one without re-deriving anything.

Only *logical* labels (``node/app#ordinal``) appear in the report —
never pod uids or session ids, whose process-global counters differ
between two masters in one interpreter.  That keeps reports byte-identical
across ``jobs=1`` vs ``jobs=N`` runs and across repeated runs under the
same fault seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class DegradationReport:
    """Loss accounting for one reconciled TraceTask."""

    #: normalized fault-plan spec string ("" when fault-free)
    faults: str = ""
    fault_seed: int = 0

    #: replicas RCO wanted traced vs replicas that delivered a window
    coverage_requested: int = 0
    coverage_achieved: int = 0

    #: infrastructure faults that actually fired
    nodes_crashed: int = 0
    nodes_restarted: int = 0
    pods_killed: int = 0
    #: ToPA outputs the injector squeezed into premature stop-on-full
    buffers_exhausted: int = 0

    #: data-path loss
    bytes_dropped: int = 0  # mangled away pre-decode + skipped by resync
    buffer_bytes_rejected: int = 0  # offered to a full/stopped ToPA output
    records_recovered: int = 0  # records decoded out of degraded sessions
    sched_records_dropped: int = 0
    sched_records_delayed: int = 0
    decode_resyncs: int = 0

    #: control-plane outcome
    sessions_completed: int = 0
    sessions_degraded: int = 0
    sessions_abandoned: int = 0
    retry_waves: int = 0
    quarantined_nodes: List[str] = field(default_factory=list)

    #: chronological fault log, logical labels only
    events: List[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """Whether the task lost anything at all."""
        return (
            self.coverage_achieved < self.coverage_requested
            or self.nodes_crashed > 0
            or self.pods_killed > 0
            or self.buffers_exhausted > 0
            or self.bytes_dropped > 0
            or self.sched_records_dropped > 0
            or self.sessions_abandoned > 0
            or self.sessions_degraded > 0
        )

    @property
    def coverage_fraction(self) -> float:
        if self.coverage_requested <= 0:
            return 1.0
        return self.coverage_achieved / self.coverage_requested

    def note(self, event: str) -> None:
        """Append one chronological fault-log line."""
        self.events.append(event)

    def to_dict(self) -> Dict:
        """Plain-dict form (stable key order via sort in to_json)."""
        return {
            "faults": self.faults,
            "fault_seed": self.fault_seed,
            "coverage_requested": self.coverage_requested,
            "coverage_achieved": self.coverage_achieved,
            "coverage_fraction": round(self.coverage_fraction, 6),
            "degraded": self.degraded,
            "nodes_crashed": self.nodes_crashed,
            "nodes_restarted": self.nodes_restarted,
            "pods_killed": self.pods_killed,
            "buffers_exhausted": self.buffers_exhausted,
            "bytes_dropped": self.bytes_dropped,
            "buffer_bytes_rejected": self.buffer_bytes_rejected,
            "records_recovered": self.records_recovered,
            "sched_records_dropped": self.sched_records_dropped,
            "sched_records_delayed": self.sched_records_delayed,
            "decode_resyncs": self.decode_resyncs,
            "sessions_completed": self.sessions_completed,
            "sessions_degraded": self.sessions_degraded,
            "sessions_abandoned": self.sessions_abandoned,
            "retry_waves": self.retry_waves,
            "quarantined_nodes": list(self.quarantined_nodes),
            "events": list(self.events),
        }

    def to_json(self, indent: int = 2) -> str:
        """Canonical JSON (sorted keys) — byte-comparable across runs."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """One-line human summary for CLI output."""
        return (
            f"coverage {self.coverage_achieved}/{self.coverage_requested}"
            f" ({self.coverage_fraction:.0%}),"
            f" crashed={self.nodes_crashed} killed={self.pods_killed}"
            f" exhausted={self.buffers_exhausted}"
            f" bytes_dropped={self.bytes_dropped}"
            f" sched_dropped={self.sched_records_dropped}"
            f" abandoned={self.sessions_abandoned}"
            f" waves={self.retry_waves}"
        )
