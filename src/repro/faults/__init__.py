"""Fault injection & graceful degradation.

EXIST's design is explicitly built around *partial* data: compulsory
stop-on-full ToPA buffers drop trace tails when memory pressure bites
(§3.3), and RCO's replica sampling merges whatever repetitions actually
delivered (§3.4).  This package exercises that story deliberately:

* :mod:`repro.faults.plan` — seeded, declarative :class:`FaultPlan`
  (parsed from a ``--faults`` spec string) naming which faults to inject
  where and when;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the runtime
  that arms the plan against a reconciling cluster: node crashes, pod
  kills, ToPA buffer exhaustion, raw-stream corruption/truncation, and
  sched-switch side-channel loss;
* :mod:`repro.faults.report` — :class:`DegradationReport`, the honest
  accounting attached to every reconciled task: coverage achieved vs
  requested, bytes dropped, records recovered, sessions abandoned.

Everything is deterministic for a given fault seed, including across
``jobs=1`` vs ``jobs=N`` decode fan-out.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.report import DegradationReport

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "DegradationReport",
]
