"""FaultInjector: arms a :class:`FaultPlan` against a reconciling cluster.

The master drives reconciliation in *waves* (initial attempt + retries).
Before each wave's tracing window the injector is given the wave's
participants — ``(node, pod, session, label)`` tuples sorted by node
name — and it:

* schedules node crashes and pod kills at ``at_fraction`` of the window
  (timed faults are one-shot: a crash spec fires in one wave only, so
  retry waves can actually make progress);
* squeezes ToPA outputs via :meth:`ToPAOutput.constrain`, forcing the
  compulsory stop-on-full path (§3.3) to engage early;
* taps the OTC sched-switch side channel to drop or delay 24-byte
  five-tuple records.

At upload time :meth:`mangle` corrupts or truncates the raw trace bytes
*before* they reach the object store, so the sequential and pooled decode
paths see byte-identical degraded input.

All randomness comes from :class:`~repro.util.rng.RngFactory` streams
keyed by stable logical names (spec index, node name, upload label, wave
number) — never by process-global ids — so an identical plan + seed
replays identically, including across ``jobs=1`` vs ``jobs=N``.
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.report import DegradationReport
from repro.util.rng import RngFactory
from repro.util.units import MSEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import ClusterNode
    from repro.cluster.pod import Pod
    from repro.core.otc import TracingSession

#: one wave participant: (node, pod, session, logical label)
Participant = Tuple["ClusterNode", "Pod", "TracingSession", str]

#: one coordinator-assigned timed fault: (kind, pod_uid, at_fraction);
#: ``pod_uid`` is empty for node-scoped faults (crash)
TimedAssignment = Tuple[str, str, float]


class FaultInjector:
    """Runtime executor of one seeded fault plan."""

    def __init__(self, plan: FaultPlan, report: Optional[DegradationReport] = None):
        self.plan = plan
        self.report = report or DegradationReport(
            faults=plan.render(), fault_seed=plan.seed
        )
        self._rngs = RngFactory(plan.seed)
        #: indices of one-shot (timed) specs that already fired
        self._consumed: set = set()
        #: nodes whose OTC currently carries our sched tap
        self._tapped: List["ClusterNode"] = []

    # -- wave lifecycle ----------------------------------------------------------

    def begin_wave(
        self, wave: int, participants: Sequence[Participant], window_ns: int
    ) -> None:
        """Arm all faults for one tracing wave (before ``run_for``)."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind is FaultKind.NODE_CRASH:
                self._arm_crashes(index, spec, participants, window_ns)
            elif spec.kind is FaultKind.POD_KILL:
                self._arm_pod_kills(index, spec, participants, window_ns)
            elif spec.kind is FaultKind.BUFFER_EXHAUST:
                self._squeeze_buffers(spec, participants)
        self._tap_sched(wave, participants)

    def end_wave(self) -> None:
        """Disarm the sched-channel taps installed by :meth:`begin_wave`."""
        for node in self._tapped:
            otc = node.facility.otc
            if otc is not None:
                otc.sched_fault = None
        self._tapped.clear()

    # -- sharded slot lifecycle ---------------------------------------------------
    #
    # The sharded control plane splits the injector's job in two.  The
    # *coordinator* picks timed-fault victims (a global choice: one rng
    # draw over all candidate slots) via :meth:`assign_timed`; the *slot
    # runners* — possibly in pool workers, each with its own injector
    # built from the same plan — arm the assignments plus all node-local
    # faults via :meth:`arm_slot`.  Every slot-local stream is keyed by
    # stable logical names (node name, wave number, upload label), so a
    # worker-side injector draws byte-identical faults to an in-process
    # one.

    def assign_timed(
        self,
        slots: Sequence[Tuple[str, str, str]],
        window_ns: int,
    ) -> dict:
        """Pick timed-fault victims for one dispatch round.

        ``slots`` are ``(node_name, pod_uid, label)`` triples in slot
        order.  Victim choice consumes the same one-shot spec indices and
        rng streams as :meth:`begin_wave` would, and emits the same
        schedule notes; returns ``{node_name: [TimedAssignment, ...]}``
        for the slot runners to arm locally.
        """
        assignments: dict = {}
        for index, spec in enumerate(self.plan.specs):
            if index in self._consumed:
                continue
            if spec.kind is FaultKind.NODE_CRASH:
                names = sorted({
                    name for name, _, _ in slots
                    if fnmatch(name, spec.target)
                })
                count = min(int(spec.magnitude), len(names))
                if count <= 0:
                    continue
                self._consumed.add(index)
                rng = self._rngs.stream("crash", index)
                picked = rng.choice(len(names), size=count, replace=False)
                for i in sorted(int(p) for p in picked):
                    name = names[i]
                    assignments.setdefault(name, []).append(
                        ("crash", "", spec.at_fraction)
                    )
                    self.report.note(
                        f"crash scheduled on {name}"
                        f" at +{spec.at_fraction:g} window"
                    )
            elif spec.kind is FaultKind.POD_KILL:
                candidates = [
                    slot for slot in slots if fnmatch(slot[0], spec.target)
                ]
                count = min(int(spec.magnitude), len(candidates))
                if count <= 0:
                    continue
                self._consumed.add(index)
                rng = self._rngs.stream("pod-kill", index)
                picked = rng.choice(len(candidates), size=count, replace=False)
                for i in sorted(int(p) for p in picked):
                    name, pod_uid, label = candidates[i]
                    assignments.setdefault(name, []).append(
                        ("pod-kill", pod_uid, spec.at_fraction)
                    )
                    self.report.note(
                        f"pod kill scheduled for {label}"
                        f" at +{spec.at_fraction:g} window"
                    )
        return assignments

    def arm_slot(
        self,
        node: "ClusterNode",
        pod: "Pod",
        session: "TracingSession",
        label: str,
        wave: int,
        window_ns: int,
        assignments: Sequence[TimedAssignment] = (),
        report: Optional[DegradationReport] = None,
    ) -> None:
        """Arm one slot's faults before its tracing window.

        Schedules the coordinator's timed assignments at their window
        fraction, squeezes ToPA outputs, and taps the node's sched
        channel — all accounting lands in ``report`` (the slot's scratch
        report under sharded reconcile) instead of ``self.report``.
        """
        report = report if report is not None else self.report
        for kind, pod_uid, at_fraction in assignments:
            at_ns = node.now + int(at_fraction * window_ns)
            if kind == "crash":
                node.schedule_crash(at_ns)
            elif kind == "pod-kill" and pod_uid == pod.uid:
                node.schedule_pod_kill(pod, session, at_ns)
        for spec in self.plan.specs_of(FaultKind.BUFFER_EXHAUST):
            if fnmatch(node.name, spec.target):
                self._squeeze_session(spec, node, session, label, report)
        self._tap_node(node, wave, report)

    def disarm_slot(self, node: "ClusterNode") -> None:
        """Remove this slot's sched tap after its window."""
        otc = node.facility.otc
        if otc is not None:
            otc.sched_fault = None
        self._tapped = [n for n in self._tapped if n is not node]

    # -- timed faults ------------------------------------------------------------

    def _arm_crashes(
        self,
        index: int,
        spec: FaultSpec,
        participants: Sequence[Participant],
        window_ns: int,
    ) -> None:
        if index in self._consumed:
            return
        nodes = {}
        for node, _, _, _ in participants:
            if node.alive and fnmatch(node.name, spec.target):
                nodes[node.name] = node
        candidates = [nodes[name] for name in sorted(nodes)]
        count = min(int(spec.magnitude), len(candidates))
        if count <= 0 or not candidates:
            return
        self._consumed.add(index)
        rng = self._rngs.stream("crash", index)
        picked = rng.choice(len(candidates), size=count, replace=False)
        for i in sorted(int(p) for p in picked):
            node = candidates[i]
            at_ns = node.now + int(spec.at_fraction * window_ns)
            node.schedule_crash(at_ns)
            self.report.note(
                f"crash scheduled on {node.name} at +{spec.at_fraction:g} window"
            )

    def _arm_pod_kills(
        self,
        index: int,
        spec: FaultSpec,
        participants: Sequence[Participant],
        window_ns: int,
    ) -> None:
        if index in self._consumed:
            return
        candidates = [
            p
            for p in participants
            if p[0].alive and fnmatch(p[0].name, spec.target)
        ]
        count = min(int(spec.magnitude), len(candidates))
        if count <= 0 or not candidates:
            return
        self._consumed.add(index)
        rng = self._rngs.stream("pod-kill", index)
        picked = rng.choice(len(candidates), size=count, replace=False)
        for i in sorted(int(p) for p in picked):
            node, pod, session, label = candidates[i]
            at_ns = node.now + int(spec.at_fraction * window_ns)
            node.schedule_pod_kill(pod, session, at_ns)
            self.report.note(
                f"pod kill scheduled for {label} at +{spec.at_fraction:g} window"
            )

    # -- buffer pressure ---------------------------------------------------------

    def _squeeze_buffers(
        self, spec: FaultSpec, participants: Sequence[Participant]
    ) -> None:
        for node, _, session, label in participants:
            if not fnmatch(node.name, spec.target):
                continue
            self._squeeze_session(spec, node, session, label, self.report)

    def _squeeze_session(
        self,
        spec: FaultSpec,
        node: "ClusterNode",
        session: "TracingSession",
        label: str,
        report: DegradationReport,
    ) -> None:
        squeezed = 0
        for core_id in session.plan.traced_cores:
            tracer = node.facility.tracers.get(core_id)
            output = tracer.output if tracer is not None else None
            if output is None:
                continue
            if output.constrain(spec.magnitude) > 0:
                squeezed += 1
        if squeezed:
            report.buffers_exhausted += squeezed
            report.note(
                f"squeezed {squeezed} ToPA outputs of {label}"
                f" by {spec.magnitude:g}"
            )

    # -- sched side channel -------------------------------------------------------

    def _tap_sched(self, wave: int, participants: Sequence[Participant]) -> None:
        seen = set()
        for node, _, _, _ in participants:
            if node.name in seen:
                continue
            seen.add(node.name)
            self._tap_node(node, wave, self.report)

    def _tap_node(
        self, node: "ClusterNode", wave: int, report: DegradationReport
    ) -> None:
        drop_specs = self.plan.specs_of(FaultKind.SCHED_DROP)
        delay_specs = self.plan.specs_of(FaultKind.SCHED_DELAY)
        if not drop_specs and not delay_specs:
            return
        drop_p = max((s.magnitude for s in drop_specs), default=0.0)
        delay_ns = int(max((s.magnitude for s in delay_specs), default=0.0) * MSEC)
        otc = node.facility.otc
        if otc is None:
            return
        rng = self._rngs.stream("sched", node.name, wave)

        def fault(session, five_tuple, _rng=rng):
            if drop_p and float(_rng.random()) < drop_p:
                report.sched_records_dropped += 1
                return None
            if delay_ns:
                report.sched_records_delayed += 1
                return (five_tuple[0] + delay_ns,) + tuple(five_tuple[1:])
            return five_tuple

        otc.sched_fault = fault
        self._tapped.append(node)

    # -- data-path mangling -------------------------------------------------------

    def mangle(
        self,
        raw: bytes,
        label: str,
        report: Optional[DegradationReport] = None,
    ) -> Tuple[bytes, int]:
        """Corrupt/truncate one uploaded trace; returns (bytes, dropped).

        ``dropped`` counts only bytes *removed* here (truncation).
        Corrupted-in-place bytes are not counted — the resilient decoder's
        ``bytes_skipped`` accounts for what the corruption actually cost,
        avoiding double counting.  The corruption stream is keyed only by
        (plan seed, label), so any injector built from the same plan —
        in-process or in a pool worker — mangles identically.
        """
        report = report if report is not None else self.report
        dropped = 0
        data = raw
        for spec in self.plan.specs_of(FaultKind.TRUNCATE):
            cut = int(len(data) * spec.magnitude)
            if cut > 0:
                data = data[: len(data) - cut]
                dropped += cut
                report.note(f"truncated {cut} bytes from {label}")
        for spec in self.plan.specs_of(FaultKind.CORRUPT):
            n = int(len(data) * spec.magnitude)
            if n <= 0 or not data:
                continue
            rng = self._rngs.stream("corrupt", label)
            positions = rng.integers(0, len(data), size=n)
            flips = rng.integers(1, 256, size=n)
            mutable = bytearray(data)
            for pos, flip in zip(positions, flips):
                mutable[int(pos)] ^= int(flip)
            data = bytes(mutable)
            report.note(f"corrupted {n} bytes of {label}")
        if dropped:
            report.bytes_dropped += dropped
        return data, dropped

    # -- queries -----------------------------------------------------------------

    def mangles_data(self) -> bool:
        """Whether the plan touches uploaded bytes at all."""
        return bool(
            self.plan.specs_of(FaultKind.TRUNCATE, FaultKind.CORRUPT)
        )
