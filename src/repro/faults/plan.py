"""Declarative, seeded fault plans.

A :class:`FaultPlan` is a tuple of :class:`FaultSpec`s plus a seed — a
complete, reproducible description of what goes wrong during one
reconciliation (or campaign).  Plans parse from compact spec strings so
the CLI and CI can name chaos scenarios in one flag::

    crash@0.5                 crash 1 node halfway through the window
    crash:2@0.25/node-0*      crash 2 nodes matching the glob at 25%
    pod-kill@0.6              kill 1 traced pod at 60% of the window
    exhaust:0.9               shrink ToPA buffers by 90% (stop-on-full)
    corrupt:0.05              corrupt 5% of uploaded trace bytes
    truncate:0.3              drop the last 30% of uploaded trace bytes
    sched-drop:0.2            drop 20% of sched-switch side records
    sched-delay:2.0           delay sched records by 2 ms

Specs are comma-separated; the preset ``chaos`` expands to a
representative mix of all fault classes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class FaultKind(enum.Enum):
    """The fault taxonomy (see docs/ARCHITECTURE.md)."""

    NODE_CRASH = "crash"
    POD_KILL = "pod-kill"
    BUFFER_EXHAUST = "exhaust"
    CORRUPT = "corrupt"
    TRUNCATE = "truncate"
    SCHED_DROP = "sched-drop"
    SCHED_DELAY = "sched-delay"


#: per-kind default magnitude when the spec string omits one
_DEFAULT_MAGNITUDE: Dict[FaultKind, float] = {
    FaultKind.NODE_CRASH: 1.0,  # nodes to crash
    FaultKind.POD_KILL: 1.0,  # pods to kill
    FaultKind.BUFFER_EXHAUST: 0.9,  # fraction of capacity removed
    FaultKind.CORRUPT: 0.02,  # fraction of bytes corrupted
    FaultKind.TRUNCATE: 0.25,  # fraction of tail removed
    FaultKind.SCHED_DROP: 0.2,  # per-record drop probability
    FaultKind.SCHED_DELAY: 1.0,  # delay in milliseconds
}

#: the named preset: one representative fault per class
CHAOS_PRESET = "crash@0.5,exhaust:0.9,corrupt:0.05,sched-drop:0.2"

_PRESETS = {
    "chaos": CHAOS_PRESET,
    "none": "",
}

_FRACTION_KINDS = frozenset(
    {
        FaultKind.BUFFER_EXHAUST,
        FaultKind.CORRUPT,
        FaultKind.TRUNCATE,
        FaultKind.SCHED_DROP,
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    ``magnitude`` is kind-specific (a count for crash/kill, a fraction
    for exhaust/corrupt/truncate/sched-drop, milliseconds for
    sched-delay); ``at_fraction`` places timed faults within the tracing
    window; ``target`` is a node-name glob for crash/kill.
    """

    kind: FaultKind
    magnitude: float
    at_fraction: float = 0.5
    target: str = "*"

    def __post_init__(self) -> None:
        if not 0.0 <= self.at_fraction <= 1.0:
            raise ValueError(f"at_fraction {self.at_fraction} outside [0, 1]")
        if self.magnitude < 0:
            raise ValueError(f"negative magnitude {self.magnitude}")
        if self.kind in _FRACTION_KINDS and self.magnitude > 1.0:
            raise ValueError(
                f"{self.kind.value} magnitude is a fraction; got {self.magnitude}"
            )

    def render(self) -> str:
        """Normalized spec-string form (round-trips through parse)."""
        text = f"{self.kind.value}:{self.magnitude:g}@{self.at_fraction:g}"
        if self.target != "*":
            text += f"/{self.target}"
        return text

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse one ``kind[:magnitude][@at_fraction][/target]`` atom."""
        body = text.strip()
        target = "*"
        if "/" in body:
            body, target = body.split("/", 1)
        at_fraction = None
        if "@" in body:
            body, at_text = body.split("@", 1)
            at_fraction = float(at_text)
        magnitude = None
        if ":" in body:
            body, mag_text = body.split(":", 1)
            magnitude = float(mag_text)
        try:
            kind = FaultKind(body.strip())
        except ValueError:
            known = sorted(k.value for k in FaultKind)
            raise ValueError(
                f"unknown fault kind {body.strip()!r}; known: {known}"
            ) from None
        return cls(
            kind=kind,
            magnitude=_DEFAULT_MAGNITUDE[kind] if magnitude is None else magnitude,
            at_fraction=0.5 if at_fraction is None else at_fraction,
            target=target.strip() or "*",
        )


@dataclass(frozen=True)
class FaultPlan:
    """A complete seeded chaos scenario."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a comma-separated spec string or preset name."""
        expanded = _PRESETS.get(text.strip().lower(), text)
        specs = tuple(
            FaultSpec.parse(atom)
            for atom in expanded.split(",")
            if atom.strip()
        )
        return cls(specs=specs, seed=seed)

    def specs_of(self, *kinds: FaultKind) -> Tuple[FaultSpec, ...]:
        """The plan's specs restricted to the given kinds, in plan order."""
        wanted = set(kinds)
        return tuple(s for s in self.specs if s.kind in wanted)

    def render(self) -> str:
        """Normalized spec string (stable; used in reports)."""
        return ",".join(spec.render() for spec in self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)
