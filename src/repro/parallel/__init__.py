"""Parallel run harness: process pools and experiment fan-out.

Experiments and cluster campaigns are embarrassingly parallel across
(scenario, scheme, seed) cells and replicas — each cell builds a fresh
simulated node and shares nothing with its siblings.  :class:`RunPool`
provides fork-based process parallelism with deterministic fallback to
in-process execution, and :func:`run_matrix` fans a grid of cells out
over one, merging results in cell order regardless of completion order.
"""

from repro.parallel.matrix import CellResult, MatrixCell, grid, run_cell, run_matrix
from repro.parallel.pool import RunPool
from repro.parallel.transport import (
    ShippedArrays,
    configure_transport,
    resolve_shipped,
    transport_mode,
)
from repro.parallel.workers import (
    WorkerPool,
    process_pool,
    process_pool_stats,
    shutdown_process_pool,
)

__all__ = [
    "RunPool",
    "WorkerPool",
    "process_pool",
    "process_pool_stats",
    "shutdown_process_pool",
    "MatrixCell",
    "CellResult",
    "grid",
    "run_cell",
    "run_matrix",
    "ShippedArrays",
    "configure_transport",
    "resolve_shipped",
    "transport_mode",
]
