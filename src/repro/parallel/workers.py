"""Persistent work-stealing worker pool (the fork-per-wave killer).

:class:`~repro.parallel.pool.RunPool` originally built a fresh
``ProcessPoolExecutor`` per ``map`` call: every scenario matrix, decode
fan-out, and reconcile wave paid worker startup again, and on small grids
the fork tax exceeded the parallel win (``matrix_speedup`` 0.96 < 1).
This module replaces that with **one long-lived set of fork workers per
process**, shared by every pool consumer:

* **work stealing** — ``map`` assigns tasks round-robin onto per-worker
  deques (locality: a worker drains its own deque front-first), and a
  worker that runs dry *steals from the back of the longest sibling
  deque*, so one decode-heavy cell cannot straggle the whole wave while
  siblings idle;
* **warm state reuse** — workers fork once and survive across ``map``
  calls, so memoized decoder tables (``_POOL_DECODERS``), the process
  decode cache, and generated binary/path caches stay warm from one wave
  to the next instead of being rebuilt per call;
* **determinism** — results are merged by task index (a pure function of
  ``(fn, items)``), and the worker reseeds the global ``random`` /
  ``numpy`` generators from ``derive_seed(base_seed, "task", index)``
  before *every* task, so even stray global-RNG use is a function of the
  task, not of which worker or completion order it drew — ``jobs=1`` vs
  ``jobs=N`` outputs stay byte-identical;
* **crash containment** — a worker that dies mid-task (OOM-kill,
  ``os._exit`` in user code) is reaped and respawned, and its in-flight
  task is re-dispatched (twice at most, then the failure surfaces);
* **idempotent shutdown** — ``close()`` is safely re-entrant, runs from
  ``atexit`` so workers are always reaped, and workers are daemonic so a
  crashed parent can never leak them.

Task exceptions do **not** poison the pool: the exception is shipped
back, remaining dispatches stop, in-flight tasks drain, and the original
exception re-raises in the parent — with every worker still alive for
the next ``map``.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import threading
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.util.rng import derive_seed

T = TypeVar("T")
R = TypeVar("R")

#: re-dispatch attempts for a task whose worker died while running it
_MAX_TASK_ATTEMPTS = 2

_worker_ids = itertools.count(0)


class WorkerCrashError(RuntimeError):
    """A task repeatedly killed the worker that ran it."""


@dataclass
class PoolStats:
    """Counters the pool benchmark and the soak smoke read."""

    maps: int = 0
    tasks: int = 0
    steals: int = 0
    respawns: int = 0
    task_failures: int = 0


class _RemoteError:
    """A worker-side exception, shipped as picklable pieces."""

    __slots__ = ("exception", "formatted")

    def __init__(self, exc: BaseException):
        import traceback

        self.formatted = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        try:
            import pickle

            pickle.dumps(exc)
            self.exception: Optional[BaseException] = exc
        except Exception:
            self.exception = None

    def rebuild(self) -> BaseException:
        if self.exception is not None:
            return self.exception
        return RuntimeError(f"pool task failed:\n{self.formatted}")


def _reseed_globals(seed: int) -> None:
    import random

    import numpy as np

    random.seed(seed)
    np.random.seed(seed % (2**32 - 1))


def _apply_worker_config(config: dict) -> None:
    """Apply parent-side process configuration inside a worker.

    Persistent workers fork *once*, so configuration the parent changes
    afterwards (today: the transport mode override) must be re-synced;
    the pool broadcasts this before each ``map``.
    """
    from repro.parallel import transport

    mode = config.get("transport_mode")
    if mode is not None and transport._MODE != mode:
        transport.configure_transport(mode)


def _worker_config() -> dict:
    """Parent-side snapshot of the config workers must mirror."""
    from repro.parallel import transport

    return {"transport_mode": transport._MODE}


def _worker_main(conn: Connection, worker_id: int, base_seed: int) -> None:
    """Persistent worker loop: recv message, run, reply, repeat.

    Messages:

    * ``None`` — shut down;
    * ``("call", fn, args)`` — broadcast call (config sync, warmups);
      replies ``("call", ok, payload)``;
    * ``("tasks", fn, [(index, item), ...])`` — run a chunk of tasks;
      replies ``("tasks", [(index, ok, payload), ...])``.
    """
    from repro.parallel import pool as pool_module

    pool_module._IN_WORKER = True
    _reseed_globals(derive_seed(base_seed, "worker", worker_id))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        kind = message[0]
        if kind == "call":
            _, fn, args = message
            try:
                conn.send(("call", True, fn(*args)))
            except BaseException as exc:  # noqa: B036 - must ship anything
                conn.send(("call", False, _RemoteError(exc)))
            continue
        _, fn, batch = message
        replies = []
        for index, item in batch:
            # per-task reseed: stray global-RNG use becomes a function of
            # the task index, never of worker identity or placement
            _reseed_globals(derive_seed(base_seed, "task", index))
            try:
                replies.append((index, True, fn(item)))
            except BaseException as exc:  # noqa: B036 - must ship anything
                replies.append((index, False, _RemoteError(exc)))
        conn.send(("tasks", replies))
    try:
        conn.close()
    except OSError:  # pragma: no cover - already torn down
        pass


class _Worker:
    """One persistent fork worker and its duplex pipe."""

    def __init__(self, base_seed: int):
        context = multiprocessing.get_context("fork")
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.worker_id = next(_worker_ids)
        self.conn = parent_conn
        self.process = context.Process(
            target=_worker_main,
            args=(child_conn, self.worker_id, base_seed),
            daemon=True,
            name=f"repro-pool-{self.worker_id}",
        )
        self.process.start()
        child_conn.close()
        #: config snapshot last synced into this worker
        self.synced_config: Optional[dict] = None

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self, timeout: float = 2.0) -> None:
        try:
            if self.alive:
                self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout)
        if self.alive:  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class WorkerPool:
    """Long-lived fork workers with parent-coordinated work stealing.

    The parent owns the per-worker task deques and dispatches over pipes
    (tasks are coarse — milliseconds to seconds — so coordination cost is
    noise).  A worker finishing its chunk is handed the next index from
    its *own* deque front; when that runs dry the parent steals from the
    **back** of the longest sibling deque, which is exactly the classic
    steal-half locality argument: the back of a deque holds the work its
    owner would reach last.
    """

    def __init__(self, max_workers: int, base_seed: int = 0):
        self.base_seed = int(base_seed)
        self.stats = PoolStats()
        self._workers: List[_Worker] = []
        self._lock = threading.Lock()
        self._closed = False
        self.grow(max_workers)

    # -- sizing ------------------------------------------------------------

    @property
    def width(self) -> int:
        """Current worker count."""
        return len(self._workers)

    def grow(self, max_workers: int) -> None:
        """Ensure at least ``max_workers`` workers exist.

        New workers fork *now*, inheriting the parent's current warm
        caches copy-on-write; existing workers are untouched.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        with self._lock:
            while len(self._workers) < max_workers:
                self._workers.append(_Worker(self.base_seed))

    # -- mapping -----------------------------------------------------------

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        chunksize: int = 1,
        width: Optional[int] = None,
    ) -> List[R]:
        """Apply ``fn`` to every item; results in input order.

        ``width`` caps how many workers this call dispatches to (a
        ``--jobs 2`` consumer of an 8-wide shared pool uses 2); steals
        move work between the participating workers only.
        """
        from repro.parallel.transport import resolve_shipped

        items = list(items)
        if self._closed:
            raise RuntimeError("pool is closed")
        if not items:
            return []
        with self._lock:
            self.stats.maps += 1
            workers = self._workers[: width or len(self._workers)]
            self._sync_config(workers)
            chunksize = max(1, int(chunksize))
            n_workers = len(workers)

            results: List[Optional[R]] = [None] * len(items)
            deques: List[deque] = [deque() for _ in range(n_workers)]
            for index in range(len(items)):
                deques[index % n_workers].append(index)
            attempts: Dict[int, int] = {}
            #: worker slot -> batch of (index, item) currently running there
            in_flight: Dict[int, List] = {}
            failure: Optional[BaseException] = None

            def next_batch(slot: int) -> List:
                batch = []
                own = deques[slot]
                while own and len(batch) < chunksize:
                    batch.append(own.popleft())
                if not batch:
                    victim = max(range(n_workers), key=lambda v: len(deques[v]))
                    if deques[victim]:
                        self.stats.steals += 1
                        while deques[victim] and len(batch) < chunksize:
                            batch.append(deques[victim].pop())
                return [(index, items[index]) for index in batch]

            def dispatch(slot: int) -> None:
                batch = next_batch(slot)
                if batch:
                    in_flight[slot] = batch
                    workers[slot].conn.send(("tasks", fn, batch))

            def respawn(slot: int) -> None:
                self.stats.respawns += 1
                workers[slot].stop(timeout=0.5)
                replacement = _Worker(self.base_seed)
                workers[slot] = replacement
                if slot < len(self._workers):
                    self._workers[slot] = replacement

            for slot in range(n_workers):
                dispatch(slot)

            while in_flight:
                conn_to_slot = {
                    workers[slot].conn: slot for slot in in_flight
                }
                ready = connection_wait(list(conn_to_slot))
                for conn in ready:
                    slot = conn_to_slot[conn]
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        # worker died mid-batch: respawn, re-dispatch its
                        # tasks unless one of them already struck twice
                        lost = in_flight.pop(slot)
                        respawn(slot)
                        nonlocal_failure = None
                        for index, _item in lost:
                            attempts[index] = attempts.get(index, 0) + 1
                            if attempts[index] >= _MAX_TASK_ATTEMPTS:
                                nonlocal_failure = WorkerCrashError(
                                    f"task {index} killed its worker "
                                    f"{attempts[index]} times"
                                )
                        if nonlocal_failure is not None:
                            failure = failure or nonlocal_failure
                        elif failure is None:
                            for index, _item in reversed(lost):
                                deques[slot].appendleft(index)
                        if failure is None:
                            dispatch(slot)
                        continue
                    kind, payload = message[0], message[1]
                    in_flight.pop(slot)
                    assert kind == "tasks"
                    for index, ok, value in payload:
                        self.stats.tasks += 1
                        if ok:
                            # materialize shm handoffs promptly, so every
                            # segment is reclaimed inside map()
                            results[index] = resolve_shipped(value)
                        else:
                            self.stats.task_failures += 1
                            if failure is None:
                                failure = value.rebuild()
                    if failure is None:
                        dispatch(slot)

            if failure is not None:
                raise failure
            return results  # type: ignore[return-value]

    def broadcast(
        self, fn: Callable, args: tuple = (), width: Optional[int] = None
    ) -> List:
        """Run ``fn(*args)`` once in every worker (warmups, config).

        ``width`` restricts the broadcast to the first ``width`` workers —
        the same subset a ``map`` of that width dispatches over, so a
        narrow facade can warm exactly the workers it will use.
        """
        with self._lock:
            workers = self._workers if width is None else self._workers[:width]
            return self._broadcast_locked(workers, fn, args)

    def _broadcast_locked(
        self, workers: List[_Worker], fn: Callable, args: tuple
    ) -> List:
        for worker in workers:
            worker.conn.send(("call", fn, args))
        replies = []
        for worker in workers:
            _kind, ok, payload = worker.conn.recv()
            if not ok:
                raise payload.rebuild()
            replies.append(payload)
        return replies

    def _sync_config(self, workers: List[_Worker]) -> None:
        """Mirror parent-side config into stale workers (cheap no-op when
        nothing changed since the last map that used them)."""
        config = _worker_config()
        stale = [w for w in workers if w.synced_config != config]
        if not stale:
            return
        self._broadcast_locked(stale, _apply_worker_config, (config,))
        for worker in stale:
            worker.synced_config = dict(config)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Reap every worker (idempotent, re-entrant safe)."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            workers, self._workers = self._workers, []
        for worker in workers:
            worker.stop()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"{self.width} workers"
        return f"WorkerPool({state}, stats={self.stats})"


#: the process-wide persistent pool every RunPool consumer shares;
#: created on first parallel map, reaped at interpreter exit
_PROCESS_POOL: Optional[WorkerPool] = None


def process_pool(max_workers: int, base_seed: int = 0) -> WorkerPool:
    """The process-wide persistent pool, grown to ``max_workers``.

    The first caller creates (and atexit-registers) the pool; later
    callers that need more workers grow it — the new workers fork at that
    moment and inherit whatever the parent has warm.  The pool never
    shrinks: a narrower consumer simply dispatches over a subset
    (``WorkerPool.map(width=...)``).
    """
    global _PROCESS_POOL
    if _PROCESS_POOL is None or _PROCESS_POOL.closed:
        _PROCESS_POOL = WorkerPool(max_workers, base_seed=base_seed)
        atexit.register(shutdown_process_pool)
    elif _PROCESS_POOL.width < max_workers:
        _PROCESS_POOL.grow(max_workers)
    return _PROCESS_POOL


def shutdown_process_pool() -> None:
    """Reap the process-wide pool (idempotent; runs from atexit)."""
    global _PROCESS_POOL
    pool = _PROCESS_POOL
    if pool is not None:
        pool.close()
        _PROCESS_POOL = None


def process_pool_stats() -> Optional[PoolStats]:
    """Stats of the live process-wide pool, or ``None`` if not created."""
    if _PROCESS_POOL is None or _PROCESS_POOL.closed:
        return None
    return _PROCESS_POOL.stats
