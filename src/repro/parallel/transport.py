"""Zero-copy pool handoff for decoded SoA columns.

Pool workers produce large numpy columns (decoded traces are four int64
arrays per stream).  Round-tripping them through the default
``ProcessPoolExecutor`` result pipe serializes every element twice (pickle
in the worker, unpickle in the parent).  :class:`ShippedArrays` instead
moves the columns through one POSIX shared-memory segment per result:

* in the **worker**, pickling the container (which happens exactly once,
  when the result crosses the process boundary) copies all arrays into a
  freshly created ``multiprocessing.shared_memory`` segment and replaces
  them with ``(segment name, per-array dtype/shape/offset)`` metadata —
  the pickle payload is a few hundred bytes regardless of column size;
* in the **parent**, :meth:`ShippedArrays.ensure_local` attaches the
  segment, copies the columns out, then closes and *unlinks* it — the
  segment lives exactly from worker-pickle to parent-unpack;
* the worker unregisters the segment from its ``resource_tracker`` after
  handoff so worker shutdown does not destroy a segment the parent still
  owns (the parent's unlink is the single point of destruction).

When shared memory is unavailable (platform without ``/dev/shm``,
creation failure) — or when forced via :func:`configure_transport` — the
container transparently falls back to pickling the raw array bytes;
consumers cannot observe the difference except through
:attr:`ShippedArrays.via`.

In-process pools never pickle, so the container just hands back the
original arrays: the fallback chain is shm -> pickle -> no-op.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

#: transport override: "auto" picks shm when available, "pickle" forces
#: the serialization fallback (tests / debugging), "shm" insists on shm
_MODE = "auto"
_VALID_MODES = ("auto", "shm", "pickle")


def configure_transport(mode: str) -> str:
    """Set the column-transport mode; returns the previous mode."""
    global _MODE
    if mode not in _VALID_MODES:
        raise ValueError(f"transport mode must be one of {_VALID_MODES}")
    previous = _MODE
    _MODE = mode
    return previous


def transport_mode() -> str:
    """The effective transport mode ("shm" or "pickle")."""
    if _MODE == "pickle" or shared_memory is None:
        return "pickle"
    return "shm"


def _unregister_segment(name: str) -> None:
    """Detach a segment from this process's resource tracker."""
    if resource_tracker is None:  # pragma: no cover
        return
    try:
        resource_tracker.unregister(f"/{name.lstrip('/')}", "shared_memory")
    except Exception:  # pragma: no cover - tracker variants across versions
        pass


class ShippedArrays:
    """Named numpy arrays plus scalar metadata, pool-transport aware.

    Build one in a worker with the result columns, return it from the
    mapped function, and call :meth:`ensure_local` / :meth:`unpack` in the
    parent.  ``meta`` is an arbitrary small picklable dict riding along
    (counters, lists of tuples — never bulk data).
    """

    def __init__(
        self,
        arrays: Mapping[str, np.ndarray],
        meta: Optional[Mapping[str, object]] = None,
    ):
        self._arrays: Optional[Dict[str, np.ndarray]] = {
            key: np.asarray(value) for key, value in arrays.items()
        }
        self.meta: Dict[str, object] = dict(meta or {})
        #: how this instance crossed the process boundary:
        #: "inline" (never pickled), "shm", or "pickle"
        self.via = "inline"
        self._pending: Optional[dict] = None

    # -- worker side (pickling) -------------------------------------------

    def __getstate__(self) -> dict:
        arrays = self._arrays
        if arrays is None:  # re-pickling an un-unpacked container
            return {"meta": self.meta, "pending": self._pending}
        specs = []
        total = 0
        for key, array in arrays.items():
            array = np.ascontiguousarray(array)
            specs.append((key, array.dtype.str, array.shape, total, array.nbytes))
            total += array.nbytes
        if transport_mode() == "shm" and total > 0:
            try:
                segment = shared_memory.SharedMemory(create=True, size=total)
            except OSError:
                segment = None
            if segment is not None:
                for (_key, _, _, offset, nbytes), array in zip(
                    specs, arrays.values()
                ):
                    segment.buf[offset : offset + nbytes] = np.ascontiguousarray(
                        array
                    ).view(np.uint8).reshape(-1).data
                name = segment.name
                segment.close()
                # the parent now owns destruction; keep this process's
                # resource tracker from unlinking the segment at exit
                _unregister_segment(name)
                return {
                    "meta": self.meta,
                    "pending": {"kind": "shm", "name": name, "specs": specs},
                }
        payload = {
            key: (array.dtype.str, array.shape, np.ascontiguousarray(array).tobytes())
            for key, array in arrays.items()
        }
        return {"meta": self.meta, "pending": {"kind": "pickle", "payload": payload}}

    def __setstate__(self, state: dict) -> None:
        self.meta = state["meta"]
        self._arrays = None
        self._pending = state["pending"]
        self.via = self._pending["kind"] if self._pending else "inline"

    # -- parent side (materialization) ------------------------------------

    def ensure_local(self) -> "ShippedArrays":
        """Materialize the arrays in this process (idempotent).

        For shm transport this attaches, copies, closes, and unlinks the
        segment — call it promptly so segments never outlive the result
        handoff.  Returns ``self`` for chaining.
        """
        if self._arrays is not None:
            return self
        pending = self._pending
        if pending is None:
            self._arrays = {}
            return self
        if pending["kind"] == "shm":
            segment = shared_memory.SharedMemory(name=pending["name"])
            try:
                arrays = {}
                for key, dtype, shape, offset, nbytes in pending["specs"]:
                    # bytes() copies out without leaving an exported
                    # pointer into the segment, so close() below succeeds
                    raw = bytes(segment.buf[offset : offset + nbytes])
                    arrays[key] = (
                        np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
                    )
                self._arrays = arrays
            finally:
                segment.close()
                segment.unlink()
        else:
            self._arrays = {
                key: np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
                for key, (dtype, shape, raw) in pending["payload"].items()
            }
        self._pending = None
        return self

    def unpack(self) -> Dict[str, np.ndarray]:
        """The named arrays, materialized locally."""
        self.ensure_local()
        assert self._arrays is not None
        return self._arrays

    def __getitem__(self, key: str) -> np.ndarray:
        return self.unpack()[key]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "local" if self._arrays is not None else "pending"
        return f"ShippedArrays({state}, via={self.via}, meta={sorted(self.meta)})"


def resolve_shipped(result):
    """Materialize every :class:`ShippedArrays` inside a mapped result.

    Walks tuples, lists, and dict values (the shapes pool results take)
    and calls :meth:`ShippedArrays.ensure_local` on each container found,
    so shared-memory segments are reclaimed as soon as ``RunPool.map``
    returns, even if a caller drops part of the result.
    """
    if isinstance(result, ShippedArrays):
        result.ensure_local()
    elif isinstance(result, (tuple, list)):
        for item in result:
            resolve_shipped(item)
    elif isinstance(result, dict):
        for item in result.values():
            resolve_shipped(item)
    return result
