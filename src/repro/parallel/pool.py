"""Fork-based process pool with deterministic in-process fallback.

The pool exists to run *independent simulation cells* (each builds its own
:class:`~repro.kernel.system.KernelSystem`) on separate cores.  Three
properties matter more than raw throughput:

* **determinism** — ``map`` preserves input order, and every cell derives
  all of its randomness from seeds carried in its own payload, so the
  merged output of ``jobs=1`` and ``jobs=N`` is byte-identical;
* **warm inheritance** — expensive memoized artifacts (generated
  binaries, path-model walks) are built in the *parent* before the
  workers fork, so every child inherits the warm caches through
  copy-on-write memory instead of regenerating them;
* **graceful degradation** — with ``max_workers <= 1``, on platforms
  without ``fork``, or when already inside a pool worker, the pool runs
  tasks in-process through the exact same code path.

:class:`RunPool` is a *facade*: the actual workers live in the
process-wide persistent :class:`~repro.parallel.workers.WorkerPool`
(forked once, reused by every ``RunPool`` for the life of the process,
reaped at interpreter exit).  Constructing a ``RunPool`` therefore costs
nothing after the first one, and ``close()`` merely detaches — which is
what makes back-to-back matrices, decode fan-outs, and reconcile waves
stop paying fork startup per call.  ``max_workers`` still means what it
says: a ``RunPool(max_workers=2)`` dispatches over at most two workers of
the shared pool, so ``--jobs`` keeps its CLI semantics.

Fork-safety of randomness: the simulation never touches the global
``random`` / ``numpy`` generators (all streams come from
:class:`repro.util.rng.RngFactory`), and the persistent workers reseed
the globals per *task* from ``derive_seed(base_seed, "task", index)`` so
any stray global-RNG use is a deterministic function of the task rather
than of worker placement.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: set in workers by the worker main loop; nested RunPools then run
#: in-process
_IN_WORKER = False


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class RunPool:
    """Order-preserving map over the shared fork pool (or in-process).

    Parameters
    ----------
    max_workers:
        Dispatch width.  ``None`` means ``os.cpu_count()``; ``<= 1``
        forces the in-process fallback.  The shared persistent pool grows
        to the largest width any ``RunPool`` has asked for and never
        shrinks; narrower pools dispatch over a subset.
    base_seed:
        Root of the per-task global-RNG reseeding in workers (does not
        influence simulation results, which carry their own seeds).
    warmup:
        Zero-argument callables run *in the parent* — populate memoized
        caches here.  Workers forked after the warmup inherit the warm
        caches copy-on-write; workers forked earlier warm up lazily on
        first use and stay warm for every later map.
    chunksize:
        Cells dispatched to a worker per round trip.  Cells are coarse
        (milliseconds to seconds each), so the default of 1 keeps the
        pool balanced; raise it for very large grids of tiny cells.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        base_seed: int = 0,
        warmup: Sequence[Callable[[], object]] = (),
        chunksize: int = 1,
    ):
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        self.base_seed = int(base_seed)
        self.chunksize = max(1, int(chunksize))
        for fn in warmup:
            fn()
        self.max_workers = max(1, int(max_workers))
        self.parallel = (
            self.max_workers > 1 and _fork_available() and not _IN_WORKER
        )
        self._pool = None
        if self.parallel:
            from repro.parallel.workers import process_pool

            self._pool = process_pool(self.max_workers, base_seed=self.base_seed)

    # -- mapping -----------------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in input order.

        The guarantee consumers rely on: the result list is a pure
        function of (fn, items), independent of worker count and
        completion order.

        Results may carry :class:`~repro.parallel.transport.ShippedArrays`
        containers (workers hand numpy columns back through shared memory
        instead of the result pipe); ``map`` materializes them before
        returning so every shared-memory segment is reclaimed here, and
        in-process runs pass the original arrays through untouched.

        A task exception stops further dispatch, drains in-flight tasks,
        and re-raises in the caller — with every shared worker still
        alive for the next map.
        """
        from repro.parallel.transport import resolve_shipped

        items = list(items)
        if self._pool is None or self._pool.closed:
            return [resolve_shipped(fn(item)) for item in items]
        return self._pool.map(
            fn, items, chunksize=self.chunksize, width=self.max_workers
        )

    def broadcast(self, fn: Callable[[], object], args: tuple = ()) -> List:
        """Run ``fn(*args)`` once in each worker this pool dispatches to.

        Used for warmups that must land in *worker* processes (e.g.
        regenerating a memoized binary so a later fan-out finds it hot).
        In-process pools just call ``fn`` once, preserving semantics.
        """
        if self._pool is None or self._pool.closed:
            return [fn(*args)]
        return self._pool.broadcast(fn, args, width=self.max_workers)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Detach from the shared pool (idempotent).

        The persistent workers deliberately survive — they are owned by
        the process-wide pool and reaped at interpreter exit (or via
        :func:`repro.parallel.workers.shutdown_process_pool`).  After
        ``close()`` this ``RunPool`` runs maps in-process.
        """
        self._pool = None
        self.parallel = False

    def __enter__(self) -> "RunPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "fork" if self.parallel else "in-process"
        return f"RunPool(max_workers={self.max_workers}, {mode})"
