"""Fork-based process pool with deterministic in-process fallback.

The pool exists to run *independent simulation cells* (each builds its own
:class:`~repro.kernel.system.KernelSystem`) on separate cores.  Three
properties matter more than raw throughput:

* **determinism** — ``map`` preserves input order, and every cell derives
  all of its randomness from seeds carried in its own payload, so the
  merged output of ``jobs=1`` and ``jobs=N`` is byte-identical;
* **warm inheritance** — expensive memoized artifacts (generated
  binaries, path-model walks) are built in the *parent* before the
  workers fork, so every child inherits the warm caches through
  copy-on-write memory instead of regenerating them;
* **graceful degradation** — with ``max_workers <= 1``, on platforms
  without ``fork``, or when already inside a pool worker, the pool runs
  tasks in-process through the exact same code path.

Fork-safety of randomness: the simulation never touches the global
``random`` / ``numpy`` generators (all streams come from
:class:`repro.util.rng.RngFactory`), but a worker initializer still
reseeds the globals from ``derive_seed(base_seed, "worker", pid)`` so any
stray global-RNG use diverges per worker instead of silently duplicating
the parent's state.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.util.rng import derive_seed

T = TypeVar("T")
R = TypeVar("R")

#: set in workers by the initializer; nested RunPools then run in-process
_IN_WORKER = False


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _worker_init(base_seed: int) -> None:
    """Per-worker initializer: mark the process and reseed global RNGs."""
    global _IN_WORKER
    _IN_WORKER = True
    import random

    import numpy as np

    seed = derive_seed(base_seed, "worker", os.getpid())
    random.seed(seed)
    np.random.seed(seed % (2**32 - 1))


class RunPool:
    """Order-preserving map over a fork process pool (or in-process).

    Parameters
    ----------
    max_workers:
        Worker count.  ``None`` means ``os.cpu_count()``;  ``<= 1`` forces
        the in-process fallback.
    base_seed:
        Root of the per-worker global-RNG reseeding (does not influence
        simulation results, which carry their own seeds).
    warmup:
        Zero-argument callables run *in the parent, before forking* —
        populate memoized caches here so workers inherit them.
    chunksize:
        Cells dispatched to a worker per round trip.  Cells are coarse
        (milliseconds to seconds each), so the default of 1 keeps the
        pool balanced; raise it for very large grids of tiny cells.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        base_seed: int = 0,
        warmup: Sequence[Callable[[], object]] = (),
        chunksize: int = 1,
    ):
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        self.base_seed = int(base_seed)
        self.chunksize = max(1, int(chunksize))
        self._executor = None
        for fn in warmup:
            fn()
        self.max_workers = max(1, int(max_workers))
        self.parallel = (
            self.max_workers > 1 and _fork_available() and not _IN_WORKER
        )
        if self.parallel:
            from concurrent.futures import ProcessPoolExecutor

            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_worker_init,
                initargs=(self.base_seed,),
            )

    # -- mapping -----------------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in input order.

        The guarantee consumers rely on: the result list is a pure
        function of (fn, items), independent of worker count and
        completion order.

        Results may carry :class:`~repro.parallel.transport.ShippedArrays`
        containers (workers hand numpy columns back through shared memory
        instead of the result pipe); ``map`` materializes them before
        returning so every shared-memory segment is reclaimed here, and
        in-process runs pass the original arrays through untouched.
        """
        from repro.parallel.transport import resolve_shipped

        items = list(items)
        if self._executor is None:
            return [resolve_shipped(fn(item)) for item in items]
        return [
            resolve_shipped(result)
            for result in self._executor.map(fn, items, chunksize=self.chunksize)
        ]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self.parallel = False

    def __enter__(self) -> "RunPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "fork" if self.parallel else "in-process"
        return f"RunPool(max_workers={self.max_workers}, {mode})"
