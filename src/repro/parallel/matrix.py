"""(scenario × scheme × seed) grid fan-out with deterministic merge.

A :class:`MatrixCell` is a self-contained, picklable description of one
simulation run; :func:`run_cell` executes it on a fresh node and reduces
the outcome to a primitive-only :class:`CellResult` (simulators, kernel
systems, and execution engines never cross process boundaries).
:func:`run_matrix` fans a grid out over a :class:`~repro.parallel.pool.RunPool`
and returns results in cell order, so the merged output is byte-identical
whether it ran on one worker or many.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments import scenarios
from repro.kernel.system import SystemConfig
from repro.parallel.pool import RunPool
from repro.program.workloads import get_workload, variant

#: override pairs canonical form: sorted tuple of (field, value)
Overrides = Tuple[Tuple[str, object], ...]


@dataclass(frozen=True)
class MatrixCell:
    """One (workload, scheme, seed) point of an experiment grid."""

    workload: str
    scheme: str
    seed: int = 7
    n_cores: int = 8
    cpuset: Optional[Tuple[int, ...]] = None
    deadline_s: float = 30.0
    window_s: Optional[float] = None
    warmup_s: float = 0.1
    node: Optional[SystemConfig] = None
    #: WorkloadProfile field overrides applied via workloads.variant()
    overrides: Overrides = ()
    #: keyword arguments for the scheme factory
    scheme_kwargs: Overrides = ()


@dataclass(frozen=True)
class CellResult:
    """Primitive-only outcome of one cell (safe to pickle and merge)."""

    workload: str
    scheme: str
    seed: int
    completion_ns: Optional[int]
    throughput_rps: Optional[float]
    wrmsr_ops: int
    space_bytes: float
    sched_records: int
    events_fired: int

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form, the canonical shape for merge comparisons."""
        return asdict(self)

    @property
    def metric(self) -> float:
        """Completion-rate or throughput, whichever the workload has."""
        if self.throughput_rps is not None:
            return self.throughput_rps
        assert self.completion_ns is not None
        return 1e9 / self.completion_ns


def run_cell(cell: MatrixCell) -> CellResult:
    """Execute one cell on a fresh simulated node.

    This is the unit of work dispatched to pool workers; everything it
    needs arrives in the cell, everything it returns is primitive.
    """
    profile = get_workload(cell.workload)
    if cell.overrides:
        profile = variant(profile, **dict(cell.overrides))
    scheme = scenarios.make_scheme(cell.scheme, **dict(cell.scheme_kwargs))
    run = scenarios.run_traced_execution(
        profile,
        scheme,
        node=cell.node
        or SystemConfig.small_node(cell.n_cores, seed=cell.seed),
        cpuset=list(cell.cpuset) if cell.cpuset is not None else None,
        seed=cell.seed,
        deadline_s=cell.deadline_s,
        window_s=cell.window_s,
        warmup_s=cell.warmup_s,
    )
    ledger = run.artifacts.ledger
    return CellResult(
        workload=cell.workload,
        scheme=run.scheme,
        seed=cell.seed,
        completion_ns=run.completion_ns,
        throughput_rps=run.throughput_rps,
        wrmsr_ops=ledger.count("wrmsr") if ledger is not None else 0,
        space_bytes=float(run.artifacts.space_bytes),
        sched_records=len(run.artifacts.sched_records),
        events_fired=run.system.sim.events_fired,
    )


def grid(
    workloads: Sequence[str],
    schemes: Sequence[str],
    seeds: Sequence[int] = (7,),
    **common,
) -> List[MatrixCell]:
    """Build the (workload × scheme × seed) cell grid, row-major."""
    return [
        MatrixCell(workload=w, scheme=s, seed=seed, **common)
        for w in workloads
        for s in schemes
        for seed in seeds
    ]


def warmup_for(cells: Iterable[MatrixCell]) -> List:
    """Parent-side warmup callables for a grid: materialize each distinct
    workload's generated binary and path model once, pre-fork, so workers
    inherit them instead of regenerating per cell."""
    distinct = {}
    for cell in cells:
        distinct.setdefault((cell.workload, cell.overrides), None)

    def make(workload: str, overrides: Overrides):
        def warm() -> None:
            profile = get_workload(workload)
            if overrides:
                profile = variant(profile, **dict(overrides))
            profile.path_model()  # also generates the binary

        return warm

    return [make(w, o) for (w, o) in distinct]


def run_matrix(
    cells: Sequence[MatrixCell],
    pool: Optional[RunPool] = None,
    jobs: Optional[int] = None,
) -> List[CellResult]:
    """Run every cell, in parallel when possible, merging in cell order.

    Pass an existing ``pool`` to amortize worker startup across several
    grids, or ``jobs`` to let the function manage a pool for this call
    (``jobs=None``/``1`` runs in-process).  The returned list is indexed
    like ``cells`` regardless of completion order.
    """
    cells = list(cells)
    if pool is not None:
        return pool.map(run_cell, cells)
    with RunPool(max_workers=jobs or 1, warmup=warmup_for(cells)) as owned:
        return owned.map(run_cell, cells)
