"""Multi-pass analysis driver with an incremental, content-addressed core.

Pass 1 (*facts*) parses the registry modules — :mod:`repro.util.identity`
and :mod:`repro.util.rng`, without importing either — and extracts the
string registries the rules check against: the ``module:attr`` pairs
rewound by ``reset_identity_counters``, the deliberately
process-lifetime entries in ``PROCESS_LIFETIME_STATE``, the fork-boundary
entry points (EX008), and the seed sink/root/canonicalizer sets (EX007).
Facts are plain string sets, picklable by construction, because pass 2
fans out.

Pass 2 (*local rules*) parses each target file and runs the per-file
:data:`repro.staticcheck.rules.RULES` registry over it.  Files are
independent once facts are in hand, so the pass maps over a
:class:`repro.parallel.RunPool` (``jobs=1`` runs in-process through the
identical code path).

Pass 3 (*project rules*) builds a :class:`repro.staticcheck.graph.
ProjectGraph` and runs the interprocedural registry
(:data:`repro.staticcheck.rules.PROJECT_RULES`), one *root module* at a
time, over each root's import closure.

All three passes sit on the :mod:`repro.staticcheck.cache` result cache:
local results are keyed on each module's source digest, project results
on each root's import-closure fingerprint, and everything on the
analyzer's own fingerprint.  A warm run re-parses only edited modules
plus the closures of invalidated roots.  The cache is invisible in the
output: cold, warm, ``jobs=1`` and ``jobs=N`` runs produce byte-identical
reports, sorted by (path, line, col, rule) — the analyzer holds itself
to the invariant it enforces.
"""

from __future__ import annotations

import ast
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.cache import (
    ModuleEntry,
    ResultCache,
    analyzer_fingerprint,
    closure_fingerprint,
    default_cache_path,
    source_digest,
)
from repro.staticcheck.rules import PROJECT_RULES, RULES, ModuleContext, Violation

#: directories never worth analyzing
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", "build", "dist"}
_SKIP_SUFFIXES = (".egg-info",)

IDENTITY_MODULE_PATH = Path("src") / "repro" / "util" / "identity.py"
RNG_MODULE_PATH = Path("src") / "repro" / "util" / "rng.py"

#: rule selection per profile: tests/benchmarks run the relaxed subset —
#: wall-clock *reads* and global-RNG hygiene still matter there, but
#: serialization order, identity registration, and the interprocedural
#: rules are contracts of the library tree only
RELAXED_RULES = ("EX001", "EX002")


# ---------------------------------------------------------------------------
# pass 1 — repo-wide facts
# ---------------------------------------------------------------------------


def _identity_import_map(tree: ast.Module) -> Dict[str, str]:
    """Local alias -> dotted module for identity.py's imports."""
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def _registry_strings(tree: ast.Module, name: str) -> Set[str]:
    """All string constants in the module-level assignment to ``name``."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(target, ast.Name) and target.id == name
            for target in node.targets
        ):
            return {
                entry.value
                for entry in ast.walk(node.value)
                if isinstance(entry, ast.Constant) and isinstance(entry.value, str)
            }
    return set()


def collect_facts(root: Path) -> Dict[str, Set[str]]:
    """Parse the registry modules into rule-checkable facts.

    Returns string sets under ``identity_registered`` / ``process_lifetime``
    (``module:attr`` pairs, for EX005/EX008), ``fork_entry_points``
    (EX008), and ``seed_sinks`` / ``seed_roots`` / ``seed_canonicalizers``
    (EX007).  Missing registry modules (analyzing a foreign tree) yield
    empty sets — per-file rules then flag every candidate, and the
    interprocedural rules fall back to their ``DEFAULT_*`` registries.
    """
    facts: Dict[str, Set[str]] = {
        "identity_registered": set(),
        "process_lifetime": set(),
        "fork_entry_points": set(),
        "seed_sinks": set(),
        "seed_roots": set(),
        "seed_canonicalizers": set(),
    }
    identity_path = root / IDENTITY_MODULE_PATH
    if identity_path.is_file():
        tree = ast.parse(identity_path.read_text(), filename=str(identity_path))
        imports = _identity_import_map(tree)
        for node in ast.walk(tree):
            # assignments like ``task._pid_counter = itertools.count(1000)``
            # inside reset_identity_counters register (module, attr)
            if isinstance(node, ast.FunctionDef) and node.name == "reset_identity_counters":
                local_imports = dict(imports)
                local_imports.update(
                    _identity_import_map(ast.Module(body=node.body, type_ignores=[]))
                )
                for statement in ast.walk(node):
                    if not isinstance(statement, ast.Assign):
                        continue
                    for target in statement.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in local_imports
                        ):
                            module = local_imports[target.value.id]
                            facts["identity_registered"].add(f"{module}:{target.attr}")
            # ``PROCESS_LIFETIME_STATE = frozenset({("module", "attr"), ...})``
            if isinstance(node, ast.Assign):
                names = [t.id for t in node.targets if isinstance(t, ast.Name)]
                if "PROCESS_LIFETIME_STATE" not in names:
                    continue
                for entry in ast.walk(node.value):
                    if isinstance(entry, ast.Tuple) and len(entry.elts) == 2:
                        parts = [
                            e.value for e in entry.elts
                            if isinstance(e, ast.Constant) and isinstance(e.value, str)
                        ]
                        if len(parts) == 2:
                            facts["process_lifetime"].add(f"{parts[0]}:{parts[1]}")
        facts["fork_entry_points"] = _registry_strings(tree, "FORK_ENTRY_POINTS")
    rng_path = root / RNG_MODULE_PATH
    if rng_path.is_file():
        tree = ast.parse(rng_path.read_text(), filename=str(rng_path))
        facts["seed_sinks"] = _registry_strings(tree, "SEED_SINKS")
        facts["seed_roots"] = _registry_strings(tree, "SEED_ROOTS")
        facts["seed_canonicalizers"] = _registry_strings(tree, "SEED_CANONICALIZERS")
    return facts


# ---------------------------------------------------------------------------
# pass 2 — per-file rule execution
# ---------------------------------------------------------------------------


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name for a file, matching the import system's view."""
    try:
        relative = path.resolve().relative_to(root.resolve())
    except ValueError:
        relative = path
    parts = list(relative.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else relative.stem


def profile_for(rel_path: str) -> str:
    """Rule profile for a repo-relative path: tests/benchmarks run relaxed."""
    head = rel_path.split("/", 1)[0]
    return "relaxed" if head in ("tests", "benchmarks") else "full"


def rules_for_profile(profile: str) -> List[str]:
    """Per-file rule ids selected for a profile, in registry order."""
    if profile == "relaxed":
        return [rule_id for rule_id in RULES if rule_id in RELAXED_RULES]
    return list(RULES)


def _syntax_error_violation(path: str, exc: SyntaxError) -> Violation:
    return Violation(
        rule="EX000",
        path=path,
        line=exc.lineno or 1,
        col=exc.offset or 0,
        message=f"file does not parse: {exc.msg}",
        scope="<module>",
        token="syntax-error",
    )


def analyze_source(
    source: str,
    path: str,
    module: str,
    facts: Optional[Dict[str, Set[str]]] = None,
    rules: Optional[Iterable[str]] = None,
    profile: str = "full",
) -> List[Violation]:
    """Run the per-file registry over one source string (self-test surface).

    A syntax error is itself reported as an ``EX000`` finding rather
    than aborting the whole run.
    """
    try:
        ctx = ModuleContext.build(
            source, path=path, module=module, facts=facts, profile=profile
        )
    except SyntaxError as exc:
        return [_syntax_error_violation(path, exc)]
    return run_local_rules(ctx, rules)


def run_local_rules(
    ctx: ModuleContext, rules: Optional[Iterable[str]] = None
) -> List[Violation]:
    """Run (a selection of) the per-file registry over a built context."""
    selected = set(rules) if rules is not None else set(RULES)
    out: List[Violation] = []
    for rule_id, (_summary, checker) in RULES.items():
        if rule_id in selected:
            out.extend(checker(ctx))
    return out


def _analyze_payload(
    payload: Tuple[str, str, str, Dict[str, Set[str]], str, Tuple[str, ...]]
) -> List[Dict[str, object]]:
    """Pool worker: analyze one file, returning picklable violation dicts."""
    path_str, rel_path, module, facts, profile, rules = payload
    source = Path(path_str).read_text()
    return [
        v.to_dict()
        for v in analyze_source(
            source, rel_path, module, facts, rules=rules, profile=profile
        )
    ]


def discover_files(paths: Sequence[Path], root: Path) -> List[Path]:
    """All ``.py`` files under ``paths``, deterministically ordered."""
    found: Set[Path] = set()
    for path in paths:
        base = path if path.is_absolute() else root / path
        if base.is_file() and base.suffix == ".py":
            found.add(base)
            continue
        for candidate in base.rglob("*.py"):
            parts = set(candidate.parts)
            if parts & _SKIP_DIRS:
                continue
            if any(part.endswith(_SKIP_SUFFIXES) for part in candidate.parts):
                continue
            found.add(candidate)
    return sorted(found)


# ---------------------------------------------------------------------------
# --changed-only support
# ---------------------------------------------------------------------------


def changed_paths(root: Path, base: Optional[str] = None) -> Optional[Set[str]]:
    """Repo-relative ``.py`` paths that differ from the merge base.

    Diffs the working tree against ``git merge-base HEAD <base>`` (first
    of ``base``, ``origin/main``, ``origin/master``, ``main`` that
    resolves) and unions uncommitted/untracked files from ``git status``.
    Returns ``None`` when git or a merge base is unavailable — callers
    must fall back to a full run, never silently analyze nothing.
    """

    def git(*args: str) -> Optional[str]:
        try:
            proc = subprocess.run(
                ["git", *args], cwd=root, capture_output=True, text=True, timeout=30
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return proc.stdout if proc.returncode == 0 else None

    merge_base = None
    for candidate in ([base] if base else []) + ["origin/main", "origin/master", "main"]:
        out = git("merge-base", "HEAD", candidate)
        if out:
            merge_base = out.strip()
            break
    if merge_base is None:
        return None
    changed: Set[str] = set()
    diff = git("diff", "--name-only", merge_base)
    if diff is None:
        return None
    changed.update(line.strip() for line in diff.splitlines() if line.strip())
    status = git("status", "--porcelain")
    if status:
        for line in status.splitlines():
            if len(line) > 3:
                changed.add(line[3:].split(" -> ")[-1].strip())
    return {path for path in changed if path.endswith(".py")}


# ---------------------------------------------------------------------------
# the incremental pipeline
# ---------------------------------------------------------------------------


@dataclass
class CheckResult:
    """Outcome of one full analysis run (pre-baseline)."""

    root: str
    files_analyzed: int
    violations: List[Violation] = field(default_factory=list)
    #: repo-relative paths in this run's report scope (baseline staleness
    #: is only judged against these)
    analyzed_paths: List[str] = field(default_factory=list)
    #: cache accounting — diagnostics only, never rendered into reports
    files_reanalyzed: int = 0
    project_roots_reanalyzed: int = 0
    cache_hits: int = 0

    def by_rule(self) -> Dict[str, int]:
        """Violation counts per rule id, sorted by rule."""
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return dict(sorted(counts.items()))


@dataclass
class _FileRow:
    """Per-file bookkeeping for one run."""

    path: Path
    rel: str
    module: str
    profile: str
    rules: List[str]
    source: str
    digest: str


def run_check(
    paths: Sequence[str],
    root: Optional[Path] = None,
    jobs: int = 1,
    use_cache: bool = True,
    cache_path: Optional[Path] = None,
    changed_only: bool = False,
    changed_base: Optional[str] = None,
) -> CheckResult:
    """Analyze ``paths`` (files or directories) with every registered rule.

    ``jobs > 1`` fans invalidated files out over a fork
    :class:`RunPool`; ``use_cache`` reuses (and refreshes) the on-disk
    result cache; ``changed_only`` restricts the run to modules changed
    since the merge base plus their reverse import-graph dependents.
    None of the three change a single output byte for the same scope —
    they only change how much work the run performs.
    """
    from repro.staticcheck.graph import (
        build_graph,
        import_closure,
        project_imports,
        reverse_closure,
        run_project_rules,
    )

    root = (root or Path.cwd()).resolve()
    files = discover_files([Path(p) for p in paths], root)
    facts = collect_facts(root)

    rows: List[_FileRow] = []
    for file in files:
        try:
            rel = file.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = file.as_posix()
        profile = profile_for(rel)
        source = file.read_text()
        rows.append(_FileRow(
            path=file,
            rel=rel,
            module=module_name_for(file, root),
            profile=profile,
            rules=rules_for_profile(profile),
            source=source,
            digest=source_digest(source),
        ))
    by_module = {row.module: row for row in rows}
    known = set(by_module)
    hashes = {row.module: row.digest for row in rows}

    fingerprint = analyzer_fingerprint(facts, sorted(RULES) + sorted(PROJECT_RULES))
    resolved_cache_path = cache_path or default_cache_path(root)
    cache = (
        ResultCache.load(resolved_cache_path, fingerprint)
        if use_cache
        else ResultCache(analyzer_fp=fingerprint)
    )

    # -- import graph: cached edges where valid, parsed edges elsewhere ----
    contexts: Dict[str, ModuleContext] = {}
    syntax_errors: Dict[str, Violation] = {}

    def parse(module: str) -> Optional[ModuleContext]:
        if module in contexts:
            return contexts[module]
        if module in syntax_errors:
            return None
        row = by_module[module]
        try:
            ctx = ModuleContext.build(
                row.source, path=row.rel, module=module,
                facts=facts, profile=row.profile,
            )
        except SyntaxError as exc:
            syntax_errors[module] = _syntax_error_violation(row.rel, exc)
            return None
        contexts[module] = ctx
        return ctx

    imports: Dict[str, Set[str]] = {}
    locally_valid: Set[str] = set()
    for row in rows:
        if cache.local_valid(row.module, row.rel, row.digest, row.profile, row.rules):
            locally_valid.add(row.module)
            imports[row.module] = {
                dep for dep in cache.modules[row.module].imports if dep in known
            }
        else:
            ctx = parse(row.module)
            imports[row.module] = (
                project_imports(ctx, known) if ctx is not None else set()
            )

    closures = {module: import_closure(imports, module) for module in known}
    deps_fp = {
        module: closure_fingerprint(hashes, closures[module])
        for module in known
    }

    # -- scope restriction (--changed-only) --------------------------------
    targets = set(known)
    if changed_only:
        changed = changed_paths(root, changed_base)
        if changed is not None:
            changed_modules = {
                row.module for row in rows if row.rel in changed
            }
            targets = changed_modules | reverse_closure(imports, changed_modules)

    # -- pass 2: local rules over invalidated, in-scope modules -------------
    local_results: Dict[str, List[Dict[str, object]]] = {}
    pending: List[_FileRow] = []
    for row in rows:
        if row.module not in targets:
            continue
        if row.module in locally_valid:
            local_results[row.module] = cache.modules[row.module].local
        elif row.module in syntax_errors:
            local_results[row.module] = [syntax_errors[row.module].to_dict()]
        else:
            pending.append(row)

    if jobs > 1 and len(pending) > 1:
        from repro.parallel import RunPool

        payloads = [
            (str(row.path), row.rel, row.module, facts, row.profile,
             tuple(row.rules))
            for row in pending
        ]
        with RunPool(max_workers=jobs) as pool:
            raw = pool.map(_analyze_payload, payloads)
        for row, batch in zip(pending, raw):
            local_results[row.module] = batch
    else:
        for row in pending:
            ctx = contexts[row.module]  # parsed above by construction
            local_results[row.module] = [
                v.to_dict() for v in run_local_rules(ctx, row.rules)
            ]

    # -- pass 3: project rules over invalidated, in-scope roots -------------
    full_roots = sorted(
        module for module in targets if by_module[module].profile == "full"
    )
    project_results: Dict[str, List[Dict[str, object]]] = {}
    invalid_roots: List[str] = []
    for module in full_roots:
        if cache.project_valid(module, deps_fp[module]):
            project_results[module] = cache.modules[module].project
        else:
            invalid_roots.append(module)
    if invalid_roots:
        graph_modules: Set[str] = set()
        for module in invalid_roots:
            graph_modules.update(closures[module] & known)
        graph_contexts = {
            module: ctx
            for module in sorted(graph_modules)
            if (ctx := parse(module)) is not None
        }
        graph = build_graph(graph_contexts, facts=facts)
        fresh = run_project_rules(
            graph, roots=[m for m in invalid_roots if m in graph_contexts]
        )
        for module in invalid_roots:
            project_results[module] = [
                v.to_dict() for v in fresh.get(module, [])
            ]

    # -- merge, dedupe, sort ------------------------------------------------
    merged: List[Violation] = []
    seen: Set[Tuple[object, ...]] = set()
    buckets = [local_results[m] for m in sorted(local_results)]
    buckets += [project_results[m] for m in sorted(project_results)]
    for bucket in buckets:
        for payload in bucket:
            violation = Violation.from_dict(payload)
            mark = (
                violation.rule, violation.path, violation.line, violation.col,
                violation.scope, violation.token, violation.message,
            )
            if mark in seen:
                continue
            seen.add(mark)
            merged.append(violation)
    merged.sort(key=lambda v: (v.path, v.line, v.col, v.rule))

    # -- refresh and persist the cache --------------------------------------
    if use_cache:
        for row in rows:
            if row.module not in targets or row.module in syntax_errors:
                continue
            cache.modules[row.module] = ModuleEntry(
                path=row.rel,
                source_hash=row.digest,
                profile=row.profile,
                rules=list(row.rules),
                imports=sorted(imports[row.module]),
                deps_fp=deps_fp[row.module] if row.profile == "full" else "",
                local=local_results.get(row.module, []),
                project=project_results.get(row.module, []),
            )
        try:
            cache.save(resolved_cache_path)
        except OSError:
            pass  # read-only checkout: the cache is an optimization only

    analyzed = sorted(row.rel for row in rows if row.module in targets)
    return CheckResult(
        root=str(root),
        files_analyzed=len(analyzed),
        violations=merged,
        analyzed_paths=analyzed,
        files_reanalyzed=len(pending),
        project_roots_reanalyzed=len(invalid_roots),
        cache_hits=len(locally_valid & targets),
    )
