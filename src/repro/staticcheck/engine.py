"""Multi-pass analysis driver.

Pass 1 (*facts*) parses :mod:`repro.util.identity` — without importing
it — and extracts the two registries the EX005 rule checks against: the
``module:attr`` pairs rewound by :func:`reset_identity_counters` and the
deliberately process-lifetime entries in ``PROCESS_LIFETIME_STATE``.
Facts are plain string sets, picklable by construction, because pass 2
fans out.

Pass 2 (*rules*) parses every target file and runs the full
:data:`repro.staticcheck.rules.RULES` registry over it.  Files are
independent once facts are in hand, so the pass maps over a
:class:`repro.parallel.RunPool` (``jobs=1`` runs in-process through the
identical code path); results are sorted by (path, line, col, rule), so
output is byte-identical regardless of worker count — the analyzer
holds itself to the invariant it enforces.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.rules import RULES, ModuleContext, Violation

#: directories never worth analyzing
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", "build", "dist"}
_SKIP_SUFFIXES = (".egg-info",)

IDENTITY_MODULE_PATH = Path("src") / "repro" / "util" / "identity.py"


# ---------------------------------------------------------------------------
# pass 1 — repo-wide facts
# ---------------------------------------------------------------------------


def _identity_import_map(tree: ast.Module) -> Dict[str, str]:
    """Local alias -> dotted module for identity.py's imports."""
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def collect_facts(root: Path) -> Dict[str, Set[str]]:
    """Parse the resettable-identity registry into rule-checkable facts.

    Returns ``{"identity_registered": {"module:attr", ...},
    "process_lifetime": {"module:attr", ...}}``.  Missing identity
    module (analyzing a foreign tree) yields empty sets — EX005 then
    flags every candidate, which is the honest default.
    """
    facts: Dict[str, Set[str]] = {
        "identity_registered": set(),
        "process_lifetime": set(),
    }
    identity_path = root / IDENTITY_MODULE_PATH
    if not identity_path.is_file():
        return facts
    tree = ast.parse(identity_path.read_text(), filename=str(identity_path))
    imports = _identity_import_map(tree)

    for node in ast.walk(tree):
        # assignments like ``task._pid_counter = itertools.count(1000)``
        # inside reset_identity_counters register (module, attr)
        if isinstance(node, ast.FunctionDef) and node.name == "reset_identity_counters":
            local_imports = dict(imports)
            local_imports.update(_identity_import_map(ast.Module(body=node.body, type_ignores=[])))
            for statement in ast.walk(node):
                if not isinstance(statement, ast.Assign):
                    continue
                for target in statement.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in local_imports
                    ):
                        module = local_imports[target.value.id]
                        facts["identity_registered"].add(f"{module}:{target.attr}")
        # ``PROCESS_LIFETIME_STATE = frozenset({("module", "attr"), ...})``
        if isinstance(node, ast.Assign):
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "PROCESS_LIFETIME_STATE" not in names:
                continue
            for entry in ast.walk(node.value):
                if isinstance(entry, ast.Tuple) and len(entry.elts) == 2:
                    parts = [
                        e.value for e in entry.elts
                        if isinstance(e, ast.Constant) and isinstance(e.value, str)
                    ]
                    if len(parts) == 2:
                        facts["process_lifetime"].add(f"{parts[0]}:{parts[1]}")
    return facts


# ---------------------------------------------------------------------------
# pass 2 — per-file rule execution
# ---------------------------------------------------------------------------


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name for a file, matching the import system's view."""
    try:
        relative = path.resolve().relative_to(root.resolve())
    except ValueError:
        relative = path
    parts = list(relative.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else relative.stem


def analyze_source(
    source: str,
    path: str,
    module: str,
    facts: Optional[Dict[str, Set[str]]] = None,
    rules: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Run the registry over one source string (the self-test surface).

    A syntax error is itself reported as an ``EX000`` finding rather
    than aborting the whole run.
    """
    try:
        ctx = ModuleContext.build(source, path=path, module=module, facts=facts)
    except SyntaxError as exc:
        return [Violation(
            rule="EX000",
            path=path,
            line=exc.lineno or 1,
            col=exc.offset or 0,
            message=f"file does not parse: {exc.msg}",
            scope="<module>",
            token="syntax-error",
        )]
    selected = set(rules) if rules is not None else set(RULES)
    out: List[Violation] = []
    for rule_id, (_summary, checker) in RULES.items():
        if rule_id in selected:
            out.extend(checker(ctx))
    return out


def _analyze_payload(payload: Tuple[str, str, str, Dict[str, Set[str]]]) -> List[Dict[str, object]]:
    """Pool worker: analyze one file, returning picklable violation dicts."""
    path_str, rel_path, module, facts = payload
    source = Path(path_str).read_text()
    return [v.to_dict() for v in analyze_source(source, rel_path, module, facts)]


def discover_files(paths: Sequence[Path], root: Path) -> List[Path]:
    """All ``.py`` files under ``paths``, deterministically ordered."""
    found: Set[Path] = set()
    for path in paths:
        base = path if path.is_absolute() else root / path
        if base.is_file() and base.suffix == ".py":
            found.add(base)
            continue
        for candidate in base.rglob("*.py"):
            parts = set(candidate.parts)
            if parts & _SKIP_DIRS:
                continue
            if any(part.endswith(_SKIP_SUFFIXES) for part in candidate.parts):
                continue
            found.add(candidate)
    return sorted(found)


@dataclass
class CheckResult:
    """Outcome of one full analysis run (pre-baseline)."""

    root: str
    files_analyzed: int
    violations: List[Violation] = field(default_factory=list)

    def by_rule(self) -> Dict[str, int]:
        """Violation counts per rule id, sorted by rule."""
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return dict(sorted(counts.items()))


def run_check(
    paths: Sequence[str],
    root: Optional[Path] = None,
    jobs: int = 1,
) -> CheckResult:
    """Analyze ``paths`` (files or directories) with every registered rule.

    ``jobs > 1`` fans files out over a fork :class:`RunPool`; the merged
    result is independent of worker count.
    """
    root = (root or Path.cwd()).resolve()
    files = discover_files([Path(p) for p in paths], root)
    facts = collect_facts(root)
    payloads = []
    for file in files:
        try:
            rel = file.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = file.as_posix()
        payloads.append((str(file), rel, module_name_for(file, root), facts))

    if jobs > 1 and len(payloads) > 1:
        from repro.parallel import RunPool

        with RunPool(max_workers=jobs) as pool:
            raw = pool.map(_analyze_payload, payloads)
    else:
        raw = [_analyze_payload(payload) for payload in payloads]

    violations = [Violation.from_dict(d) for batch in raw for d in batch]
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return CheckResult(
        root=str(root), files_analyzed=len(files), violations=violations
    )
