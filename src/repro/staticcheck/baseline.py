"""Committed suppression baseline with per-entry justifications.

The baseline is the repo's list of *deliberate* exemptions from the EX
rules — every entry pairs a line-number-independent violation key with a
one-line justification of why the flagged construct is correct (the
benchmark reporter's wall-clock timestamp, the pool's defensive global
reseed, id()-keyed in-process memoization).  It is a contract, not a
dumping ground:

* a violation whose key is absent fails the check (*new* violation);
* a baseline entry matching no current violation also fails the check
  (*stale* suppression) — fixed code must shed its exemption, so the
  file can only ever shrink by fixing or grow by justified decision.

Format (``staticcheck-baseline.json``, sorted, committed)::

    {
      "version": 1,
      "suppressions": [
        {"key": "EX001:src/...:scope:token", "justification": "..."}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.staticcheck.rules import Violation

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "staticcheck-baseline.json"


@dataclass
class Baseline:
    """key -> justification mapping plus (de)serialization."""

    suppressions: Dict[str, str] = field(default_factory=dict)

    def to_json(self) -> str:
        """Canonical sorted JSON document for the committed file."""
        payload = {
            "version": BASELINE_VERSION,
            "suppressions": [
                {"key": key, "justification": justification}
                for key, justification in sorted(self.suppressions.items())
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Baseline":
        """Parse a baseline document, validating its contract.

        Beyond the version, two shapes are rejected outright: duplicate
        suppression keys (the second entry would silently win, hiding a
        merge mistake) and empty or whitespace-only justifications (an
        exemption nobody can defend is not an exemption — the whole
        point of the file is the written why).
        """
        payload = json.loads(text)
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(f"unsupported baseline version {version!r}")
        suppressions: Dict[str, str] = {}
        for entry in payload.get("suppressions", []):
            key = str(entry["key"])
            justification = str(entry.get("justification", ""))
            if key in suppressions:
                raise ValueError(f"duplicate suppression key {key!r}")
            if not justification.strip():
                raise ValueError(
                    f"suppression {key!r} has an empty justification — "
                    f"every baseline entry must say why the finding is ok"
                )
            suppressions[key] = justification
        return cls(suppressions=suppressions)


def load_baseline(path: Path) -> Baseline:
    """Read and parse the baseline file at ``path``."""
    return Baseline.from_json(path.read_text())


def _key_path(key: str) -> str:
    """The repo-relative path segment of a suppression key.

    Keys are ``RULE:path:scope:token``; paths are posix-relative and so
    never contain a colon themselves.
    """
    parts = key.split(":")
    return parts[1] if len(parts) >= 2 else ""


def apply_baseline(
    violations: Sequence[Violation],
    baseline: Baseline,
    analyzed_paths: Optional[Sequence[str]] = None,
) -> Tuple[List[Violation], List[Violation], List[str]]:
    """Split violations against the baseline.

    Returns ``(new, suppressed, stale_keys)`` — ``new`` must be empty
    and ``stale_keys`` must be empty for the check to pass.

    ``analyzed_paths`` scopes staleness to this run: an entry whose path
    was not analyzed (a ``src``-only run against a baseline that also
    covers ``tests/``, or a ``--changed-only`` run) is simply out of
    scope, not stale — only a full-tree run can retire entries.
    """
    new: List[Violation] = []
    suppressed: List[Violation] = []
    matched = set()
    for violation in violations:
        if violation.key in baseline.suppressions:
            suppressed.append(violation)
            matched.add(violation.key)
        else:
            new.append(violation)
    candidates = set(baseline.suppressions) - matched
    if analyzed_paths is not None:
        in_scope = set(analyzed_paths)
        candidates = {key for key in candidates if _key_path(key) in in_scope}
    return new, suppressed, sorted(candidates)


def write_baseline(
    path: Path, violations: Sequence[Violation], previous: Baseline
) -> Baseline:
    """Regenerate the baseline from current findings.

    Justifications of surviving keys are preserved; genuinely new keys
    get a ``TODO`` placeholder that a reviewer must replace before
    committing (the sync test treats TODOs as documentation debt, not
    failure — the *diff* is what review gates).
    """
    suppressions: Dict[str, str] = {}
    for violation in violations:
        suppressions[violation.key] = previous.suppressions.get(
            violation.key, "TODO: justify this exemption"
        )
    baseline = Baseline(suppressions=suppressions)
    path.write_text(baseline.to_json())
    return baseline
