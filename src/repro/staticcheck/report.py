"""Deterministic reporters for analysis results.

Two faces, same content: a ruff-style text listing for humans and a
canonical JSON document (sorted keys, stable ordering) for the CI
artifact.  Byte-determinism is not cosmetic here — the JSON report is
diffed across runs, so the reporter honours the same ordered-output
contract the EX003 rule enforces on the rest of the repo.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.staticcheck.engine import CheckResult
from repro.staticcheck.rules import PROJECT_RULES, RULES, Violation

REPORT_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _all_rule_summaries() -> Dict[str, str]:
    summaries = {rule_id: summary for rule_id, (summary, _fn) in RULES.items()}
    summaries.update(
        {rule_id: summary for rule_id, (summary, _fn) in PROJECT_RULES.items()}
    )
    summaries["EX000"] = "file does not parse"
    return dict(sorted(summaries.items()))


def render_text(
    result: CheckResult,
    new: Sequence[Violation],
    suppressed: Sequence[Violation],
    stale: Sequence[str],
) -> str:
    """Human-readable listing; one ``path:line:col RULE message`` per hit."""
    lines: List[str] = []
    for violation in new:
        lines.append(
            f"{violation.path}:{violation.line}:{violation.col + 1} "
            f"{violation.rule} {violation.message}"
        )
    for key in stale:
        lines.append(
            f"STALE {key}: baseline entry matches no current violation — "
            f"remove it (the code it excused was fixed)"
        )
    summary = (
        f"existcheck: {result.files_analyzed} files, "
        f"{len(new)} new violation(s), {len(suppressed)} baselined, "
        f"{len(stale)} stale suppression(s)"
    )
    if new:
        counts = {}
        for violation in new:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        breakdown = ", ".join(
            f"{rule_id}×{count}" for rule_id, count in sorted(counts.items())
        )
        summary += f" [{breakdown}]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    result: CheckResult,
    new: Sequence[Violation],
    suppressed: Sequence[Violation],
    stale: Sequence[str],
) -> str:
    """Canonical JSON document for the CI artifact (byte-stable)."""
    payload: Dict[str, object] = {
        "version": REPORT_VERSION,
        "files_analyzed": result.files_analyzed,
        "rules": _all_rule_summaries(),
        "new_violations": [v.to_dict() for v in new],
        "suppressed": [v.to_dict() for v in suppressed],
        "stale_suppressions": list(stale),
        "summary": {
            "new": len(new),
            "suppressed": len(suppressed),
            "stale": len(stale),
            "by_rule": _count_by_rule(new),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _count_by_rule(violations: Sequence[Violation]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for violation in violations:
        counts[violation.rule] = counts.get(violation.rule, 0) + 1
    return dict(sorted(counts.items()))


def render_sarif(
    result: CheckResult,
    new: Sequence[Violation],
    suppressed: Sequence[Violation],
) -> str:
    """SARIF 2.1.0 document for GitHub code scanning.

    New violations surface as ``error`` results (they fail the check);
    baselined ones ride along as ``note`` results so the annotations
    show the accepted debt without failing anything.  Stale suppressions
    are a baseline-file problem, not a code location, so they stay out
    of SARIF (the text/JSON reports carry them).
    """
    rules_meta = [
        {
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id, summary in _all_rule_summaries().items()
    ]

    def to_result(violation: Violation, level: str) -> Dict[str, object]:
        return {
            "ruleId": violation.rule,
            "level": level,
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(violation.line, 1),
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {"existcheckKey/v1": violation.key},
        }

    payload: Dict[str, object] = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "existcheck",
                        "informationUri": "https://github.com/",
                        "rules": rules_meta,
                    }
                },
                "results": (
                    [to_result(v, "error") for v in new]
                    + [to_result(v, "note") for v in suppressed]
                ),
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
