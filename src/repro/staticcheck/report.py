"""Deterministic reporters for analysis results.

Two faces, same content: a ruff-style text listing for humans and a
canonical JSON document (sorted keys, stable ordering) for the CI
artifact.  Byte-determinism is not cosmetic here — the JSON report is
diffed across runs, so the reporter honours the same ordered-output
contract the EX003 rule enforces on the rest of the repo.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.staticcheck.engine import CheckResult
from repro.staticcheck.rules import RULES, Violation

REPORT_VERSION = 1


def render_text(
    result: CheckResult,
    new: Sequence[Violation],
    suppressed: Sequence[Violation],
    stale: Sequence[str],
) -> str:
    """Human-readable listing; one ``path:line:col RULE message`` per hit."""
    lines: List[str] = []
    for violation in new:
        lines.append(
            f"{violation.path}:{violation.line}:{violation.col + 1} "
            f"{violation.rule} {violation.message}"
        )
    for key in stale:
        lines.append(
            f"STALE {key}: baseline entry matches no current violation — "
            f"remove it (the code it excused was fixed)"
        )
    summary = (
        f"existcheck: {result.files_analyzed} files, "
        f"{len(new)} new violation(s), {len(suppressed)} baselined, "
        f"{len(stale)} stale suppression(s)"
    )
    if new:
        counts = {}
        for violation in new:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        breakdown = ", ".join(
            f"{rule_id}×{count}" for rule_id, count in sorted(counts.items())
        )
        summary += f" [{breakdown}]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    result: CheckResult,
    new: Sequence[Violation],
    suppressed: Sequence[Violation],
    stale: Sequence[str],
) -> str:
    """Canonical JSON document for the CI artifact (byte-stable)."""
    payload: Dict[str, object] = {
        "version": REPORT_VERSION,
        "files_analyzed": result.files_analyzed,
        "rules": {
            rule_id: summary for rule_id, (summary, _fn) in sorted(RULES.items())
        },
        "new_violations": [v.to_dict() for v in new],
        "suppressed": [v.to_dict() for v in suppressed],
        "stale_suppressions": list(stale),
        "summary": {
            "new": len(new),
            "suppressed": len(suppressed),
            "stale": len(stale),
            "by_rule": _count_by_rule(new),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _count_by_rule(violations: Sequence[Violation]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for violation in violations:
        counts[violation.rule] = counts.get(violation.rule, 0) + 1
    return dict(sorted(counts.items()))
