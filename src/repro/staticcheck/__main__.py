"""Module entry point: ``python -m repro.staticcheck``."""

import sys

from repro.staticcheck.main import main

sys.exit(main())
