"""Argument surface shared by ``python -m repro.staticcheck`` and
``repro.cli staticcheck``.

Exit codes follow the lint convention the CI gate relies on: 0 = clean
against the baseline, 1 = new violations and/or stale suppressions,
2 = usage error (bad paths, unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.staticcheck.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.staticcheck.engine import run_check
from repro.staticcheck.report import render_json, render_sarif, render_text


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the staticcheck options on ``parser`` (shared surface)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the per-file rule pass (RunPool)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=f"suppression file (default: ./{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every violation, ignoring any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the baseline from current findings "
             "(keeps existing justifications) and exit 0",
    )
    parser.add_argument(
        "--json", default="", metavar="PATH",
        help="also write the canonical JSON report to PATH",
    )
    parser.add_argument(
        "--sarif", default="", metavar="PATH",
        help="also write a SARIF 2.1.0 report to PATH (GitHub code scanning)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="analyze only modules changed since the merge base with "
             "origin/main, plus their reverse import-graph dependents "
             "(falls back to a full run when git is unavailable)",
    )
    parser.add_argument(
        "--changed-base", default=None, metavar="REF",
        help="merge-base ref for --changed-only (default: origin/main)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the incremental result cache",
    )
    parser.add_argument(
        "--cache", default="", metavar="PATH",
        help="result cache location (default: ./.staticcheck-cache.json)",
    )


def run(args: argparse.Namespace) -> int:
    """Execute a staticcheck run from parsed arguments."""
    root = Path.cwd()
    for path in args.paths:
        if not (root / path).exists() and not Path(path).exists():
            print(f"error: path {path!r} does not exist", file=sys.stderr)
            return 2

    result = run_check(
        args.paths,
        root=root,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_path=Path(args.cache) if args.cache else None,
        changed_only=args.changed_only,
        changed_base=args.changed_base,
    )
    # cache accounting goes to stderr only: stdout and the report files
    # must stay byte-identical across cold/warm/jobs=N runs
    print(
        f"existcheck: {result.files_reanalyzed} file(s) re-analyzed, "
        f"{result.cache_hits} cache hit(s), "
        f"{result.project_roots_reanalyzed} project root(s) re-analyzed",
        file=sys.stderr,
    )

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    baseline = Baseline()
    if not args.no_baseline and baseline_path.is_file():
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, KeyError) as exc:
            print(f"error: unreadable baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2
    elif args.baseline and not baseline_path.is_file() and not args.write_baseline:
        print(f"error: baseline {baseline_path} not found", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(baseline_path, result.violations, baseline)
        print(
            f"existcheck: wrote {len(result.violations)} suppression(s) "
            f"to {baseline_path}"
        )
        return 0

    new, suppressed, stale = apply_baseline(
        result.violations, baseline, analyzed_paths=result.analyzed_paths
    )
    text = render_text(result, new, suppressed, stale)
    json_doc = render_json(result, new, suppressed, stale)
    print(json_doc if args.format == "json" else text)
    if args.json:
        Path(args.json).write_text(json_doc)
    if args.sarif:
        Path(args.sarif).write_text(render_sarif(result, new, suppressed))
    return 1 if (new or stale) else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="existcheck — determinism & simulation-purity analyzer",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))
