"""Whole-program view: project symbol table plus import/call graph.

The per-file rules (EX001..EX006) deliberately see one module at a time;
the bug classes PRs 6-9 fixed by hand — an uncanonicalized float seed
label crossing a module boundary, a pool-worker callable three calls
deep mutating a module global, a packed-int key whose width constant
lives in another file — are invisible at that granularity.
:class:`ProjectGraph` is the shared substrate the interprocedural rules
(EX007..EX009, registered in :mod:`repro.staticcheck.rules`) run over:

* a **symbol table** mapping dotted qualnames to definitions — functions
  and methods (with their :class:`~repro.staticcheck.rules.ModuleContext`
  for alias resolution), module-level integer constants (packed-width
  declarations), and per-class attribute annotations (the float-field
  signal EX007 keys on);
* an **import graph** restricted to project-internal modules, with the
  reverse edges the incremental cache and ``--changed-only`` use to find
  dependents of an edited module;
* a **call graph** whose edges are resolved through each module's import
  aliases: plain calls, ``from``-imported calls, same-class ``self.``
  method calls, and calls through imported modules all resolve to
  project qualnames; anything rooted in a dynamic receiver stays
  unresolved (heuristic analyzer, conservative by construction).

Cache-soundness contract: every interprocedural rule analyzes one *root
module* at a time and may only consult the root and modules in the
root's import closure (information flows strictly *down* the import
graph).  That is what makes the per-module result cache's key — source
digest plus import-closure dependency fingerprints — sound: an edit
outside a root's closure cannot change the root's findings.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.rules import (  # noqa: F401  (defaults re-exported)
    DEFAULT_CANONICALIZERS,
    DEFAULT_FORK_ENTRY_POINTS,
    DEFAULT_SEED_ROOTS,
    DEFAULT_SEED_SINKS,
    ModuleContext,
    Violation,
)


def project_imports(ctx: ModuleContext, known: Set[str]) -> Set[str]:
    """Project-internal modules ``ctx`` imports (direct edges only).

    ``from repro.util import rng`` can bind either the submodule
    ``repro.util.rng`` or a symbol of ``repro.util``; both candidates are
    tried against the known-module universe, so the edge set errs toward
    *more* dependencies — which only ever makes cache invalidation more
    eager, never stale.
    """
    deps: Set[str] = set()
    candidates: List[str] = []
    for target in ctx.import_aliases.values():
        candidates.append(target)
    for target in ctx.from_imports.values():
        candidates.append(target)
        if "." in target:
            candidates.append(target.rsplit(".", 1)[0])
    for candidate in candidates:
        probe = candidate
        while probe:
            if probe in known and probe != ctx.module:
                deps.add(probe)
                break
            probe = probe.rsplit(".", 1)[0] if "." in probe else ""
    return deps


def reverse_closure(
    imports: Dict[str, Set[str]], seeds: Iterable[str]
) -> Set[str]:
    """Seeds plus every module that (transitively) imports one of them."""
    reverse: Dict[str, Set[str]] = {module: set() for module in imports}
    for module, deps in imports.items():
        for dep in deps:
            reverse.setdefault(dep, set()).add(module)
    out: Set[str] = set()
    stack = [seed for seed in seeds if seed in reverse]
    while stack:
        module = stack.pop()
        if module in out:
            continue
        out.add(module)
        stack.extend(reverse.get(module, ()))
    return out


def import_closure(imports: Dict[str, Set[str]], seed: str) -> Set[str]:
    """Seed plus everything it (transitively) imports; cycle-safe."""
    out: Set[str] = set()
    stack = [seed]
    while stack:
        module = stack.pop()
        if module in out:
            continue
        out.add(module)
        stack.extend(imports.get(module, ()))
    return out


class FunctionInfo:
    """Symbol-table row for one function or method."""

    __slots__ = ("qualname", "ctx", "node", "class_name")

    def __init__(
        self,
        qualname: str,
        ctx: ModuleContext,
        node: ast.AST,
        class_name: Optional[str],
    ):
        self.qualname = qualname
        self.ctx = ctx
        self.node = node
        self.class_name = class_name  # enclosing "mod.Class" for methods


class ProjectGraph:
    """Symbol table + import/call graph over a set of module contexts."""

    def __init__(
        self,
        contexts: Dict[str, ModuleContext],
        facts: Optional[Dict[str, Set[str]]] = None,
    ):
        self.contexts = contexts
        self.facts = facts or {}
        #: module -> project-internal modules it imports
        self.imports: Dict[str, Set[str]] = {}
        #: "mod.fn" / "mod.Class.meth" -> FunctionInfo
        self.functions: Dict[str, FunctionInfo] = {}
        #: "mod.NAME" -> int value for module-level integer constants
        self.constants: Dict[str, int] = {}
        #: "mod.Class" -> {attr: annotation token ("float", "int", ...)}
        self.class_annotations: Dict[str, Dict[str, str]] = {}
        #: caller qualname -> [(callee qualname, call node)]
        self.calls: Dict[str, List[Tuple[str, ast.Call]]] = {}
        known = set(contexts)
        for module, ctx in contexts.items():
            self.imports[module] = project_imports(ctx, known)
            self._index_module(ctx)
        for info in list(self.functions.values()):
            self.calls[info.qualname] = self._index_calls(info)

    # -- symbol table -------------------------------------------------------

    def _index_module(self, ctx: ModuleContext) -> None:
        module = ctx.module
        for node in ctx.tree.body:
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)
                and not isinstance(node.value.value, bool)
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.constants[f"{module}.{target.id}"] = node.value.value
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # scope_of(def) is the def's own dotted scope ("Class.meth")
                qual = ctx.scope_of(node)
                class_name = None
                for ancestor in ctx.ancestors(node):
                    if isinstance(ancestor, ast.ClassDef):
                        class_name = f"{module}.{ctx.scope_of(ancestor)}"
                        break
                    if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        break
                self.functions[f"{module}.{qual}"] = FunctionInfo(
                    f"{module}.{qual}", ctx, node, class_name
                )
            elif isinstance(node, ast.ClassDef):
                scope = ctx.scope_of(node)
                if "." in scope:
                    continue  # nested class: out of the annotation model
                annotations: Dict[str, str] = {}
                for statement in node.body:
                    if (
                        isinstance(statement, ast.AnnAssign)
                        and isinstance(statement.target, ast.Name)
                    ):
                        annotations[statement.target.id] = _annotation_token(
                            statement.annotation
                        )
                self.class_annotations[f"{module}.{node.name}"] = annotations

    # -- call graph ---------------------------------------------------------

    def resolve_callable(
        self, ctx: ModuleContext, node: ast.AST, enclosing: Optional[FunctionInfo] = None
    ) -> Optional[str]:
        """Project qualname a callable expression refers to, if resolvable.

        Handles plain names (local defs and ``from``-imports), dotted
        access through imported modules, and ``self.method`` within the
        enclosing class.  Dynamic receivers return ``None``.
        """
        if isinstance(node, ast.Lambda):
            return None
        if (
            enclosing is not None
            and enclosing.class_name
            and isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
        ):
            candidate = f"{enclosing.class_name}.{node.attr}"
            if candidate in self.functions:
                return candidate
            return None
        resolved = ctx.resolve(node)
        if resolved is None:
            return None
        if resolved in self.functions:
            return resolved
        # a bare local name resolves against the defining module
        if "." not in resolved:
            candidate = f"{ctx.module}.{resolved}"
            if candidate in self.functions:
                return candidate
        # ClassName(...) -> __init__ is not walked; treat the class's
        # methods as unreachable through construction (conservative)
        return None

    def _index_calls(self, info: FunctionInfo) -> List[Tuple[str, ast.Call]]:
        out: List[Tuple[str, ast.Call]] = []
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            callee = self.resolve_callable(info.ctx, node.func, info)
            if callee is not None:
                out.append((callee, node))
        return out

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Function qualnames reachable from ``roots`` via resolved calls."""
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            for callee, _site in self.calls.get(qual, ()):
                if callee not in seen:
                    stack.append(callee)
        return seen

    # -- constant resolution ------------------------------------------------

    def constant_value(self, ctx: ModuleContext, node: ast.AST) -> Optional[int]:
        """Integer value of an expression, following cross-module names.

        Resolves literals, module-level integer constants (local or
        imported), and ``a + b`` / ``a * b`` / ``1 << k`` arithmetic over
        such constants — enough to evaluate declared pack widths like
        ``SEQ_BITS + TOK_BITS`` wherever the constants live.
        """
        if isinstance(node, ast.Constant) and isinstance(node.value, int) \
                and not isinstance(node.value, bool):
            return node.value
        if isinstance(node, (ast.Name, ast.Attribute)):
            resolved = ctx.resolve(node)
            if resolved is None:
                return None
            if resolved in self.constants:
                return self.constants[resolved]
            if "." not in resolved:
                return self.constants.get(f"{ctx.module}.{resolved}")
            return None
        if isinstance(node, ast.BinOp):
            left = self.constant_value(ctx, node.left)
            right = self.constant_value(ctx, node.right)
            if left is None or right is None:
                return None
            try:
                if isinstance(node.op, ast.Add):
                    return left + right
                if isinstance(node.op, ast.Sub):
                    return left - right
                if isinstance(node.op, ast.Mult):
                    return left * right
                if isinstance(node.op, ast.LShift):
                    return left << right
                if isinstance(node.op, ast.BitOr):
                    return left | right
            except (OverflowError, ValueError):
                return None
        return None


def _annotation_token(annotation: ast.AST) -> str:
    """Terminal token of a type annotation ("float", "Dict", ...)."""
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # string annotation: take the head identifier
        return node.value.split("[")[0].strip()
    return ""


def build_graph(
    contexts: Dict[str, ModuleContext],
    facts: Optional[Dict[str, Set[str]]] = None,
) -> ProjectGraph:
    """Construct a :class:`ProjectGraph` over prepared module contexts."""
    return ProjectGraph(contexts, facts=facts)


def build_graph_from_sources(
    sources: Dict[str, str],
    facts: Optional[Dict[str, Set[str]]] = None,
    profiles: Optional[Dict[str, str]] = None,
) -> ProjectGraph:
    """Test/fixture surface: build a graph from ``{rel_path: source}``.

    Module names derive from paths exactly as the engine derives them
    (``src/`` stripped, ``__init__`` collapsed), so fixtures exercise the
    same resolution rules the real tree does.
    """
    from repro.staticcheck.engine import module_name_for
    from pathlib import Path

    contexts: Dict[str, ModuleContext] = {}
    for rel_path, source in sources.items():
        module = module_name_for(Path(rel_path), Path("."))
        ctx = ModuleContext.build(source, path=rel_path, module=module, facts=facts)
        if profiles:
            ctx.profile = profiles.get(rel_path, "full")
        contexts[module] = ctx
    return ProjectGraph(contexts, facts=facts)


def run_project_rules(
    graph: ProjectGraph,
    roots: Optional[Sequence[str]] = None,
    rules: Optional[Iterable[str]] = None,
) -> Dict[str, List[Violation]]:
    """Run the interprocedural registry, one root module at a time.

    Returns ``{root module: [violations]}`` — the per-root bucketing is
    what the incremental cache stores, keyed on the root's import-closure
    fingerprint (see the cache-soundness contract in the module
    docstring).  ``roots`` defaults to every full-profile module in the
    graph; relaxed-profile modules (tests/benchmarks) never root an
    interprocedural analysis.
    """
    from repro.staticcheck.rules import PROJECT_RULES

    if roots is None:
        roots = sorted(
            module for module, ctx in graph.contexts.items()
            if getattr(ctx, "profile", "full") == "full"
        )
    selected = set(rules) if rules is not None else set(PROJECT_RULES)
    out: Dict[str, List[Violation]] = {}
    for root in roots:
        found: List[Violation] = []
        for rule_id, (_summary, checker) in PROJECT_RULES.items():
            if rule_id in selected:
                found.extend(checker(graph, root))
        found.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        out[root] = found
    return out
