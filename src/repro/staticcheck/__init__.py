"""``existcheck`` — static determinism & simulation-purity analyzer.

The reproduction's headline guarantees — byte-identical ``jobs=1`` vs
``jobs=N`` replay, seeded fault injection, content-addressed decode
caching — all rest on source-level invariants that no runtime test pins
down directly: virtual-time code must never read the wall clock, all
randomness must come from :mod:`repro.util.rng` named streams, mutable
module-global state must be registered with the resettable-identity
machinery, and anything serialized or hashed must iterate in a defined
order.  Violations historically surfaced as replay divergence and were
fixed by bisection (see CHANGES.md, PR 3/4); this package catches the
same bug classes at review time by walking the repo's own AST.

Layout:

* :mod:`repro.staticcheck.rules`    — the EX rule registry and the six
  shipped rules (EX001..EX006), one per observed failure mode;
* :mod:`repro.staticcheck.engine`   — multi-pass driver: a facts pass
  over :mod:`repro.util.identity`, then a parallel per-file rule pass on
  :class:`repro.parallel.RunPool`;
* :mod:`repro.staticcheck.baseline` — committed suppression file with
  per-entry justifications; stale entries fail the check;
* :mod:`repro.staticcheck.report`   — deterministic text/JSON reporters;
* :mod:`repro.staticcheck.main`     — argument surface shared by
  ``python -m repro.staticcheck`` and ``repro.cli staticcheck``.

Run it from the repo root::

    PYTHONPATH=src python -m repro.staticcheck src

Suppress a deliberate exemption either inline::

    timestamp = datetime.now()  # existcheck: ignore[EX001]

or durably, with a justification, in ``staticcheck-baseline.json``.
"""

from repro.staticcheck.baseline import Baseline, load_baseline
from repro.staticcheck.engine import CheckResult, analyze_source, run_check
from repro.staticcheck.rules import RULES, Violation

__all__ = [
    "Baseline",
    "CheckResult",
    "RULES",
    "Violation",
    "analyze_source",
    "load_baseline",
    "run_check",
]
