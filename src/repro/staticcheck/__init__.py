"""``existcheck`` — static determinism & simulation-purity analyzer.

The reproduction's headline guarantees — byte-identical ``jobs=1`` vs
``jobs=N`` replay, seeded fault injection, content-addressed decode
caching — all rest on source-level invariants that no runtime test pins
down directly: virtual-time code must never read the wall clock, all
randomness must come from :mod:`repro.util.rng` named streams, mutable
module-global state must be registered with the resettable-identity
machinery, and anything serialized or hashed must iterate in a defined
order.  Violations historically surfaced as replay divergence and were
fixed by bisection (see CHANGES.md, PR 3/4); this package catches the
same bug classes at review time by walking the repo's own AST.

Layout:

* :mod:`repro.staticcheck.rules`    — the EX rule registries: per-file
  rules EX001..EX006 plus the interprocedural rules EX007 (seed
  provenance), EX008 (fork-shared-state races), and EX009 (packed-int
  width safety), one per observed failure mode;
* :mod:`repro.staticcheck.graph`    — project-wide symbol table and
  import/call graph the interprocedural rules run over;
* :mod:`repro.staticcheck.engine`   — multi-pass driver: a facts pass
  over :mod:`repro.util.identity` / :mod:`repro.util.rng`, a parallel
  per-file rule pass on :class:`repro.parallel.RunPool`, and a
  per-root project-rule pass;
* :mod:`repro.staticcheck.cache`    — content-addressed per-module
  result cache (warm runs re-analyze only changed modules and their
  dependents; reports stay byte-identical);
* :mod:`repro.staticcheck.baseline` — committed suppression file with
  per-entry justifications; stale entries fail the check;
* :mod:`repro.staticcheck.report`   — deterministic text/JSON/SARIF
  reporters;
* :mod:`repro.staticcheck.main`     — argument surface shared by
  ``python -m repro.staticcheck`` and ``repro.cli staticcheck``.

Run it from the repo root::

    PYTHONPATH=src python -m repro.staticcheck src

Suppress a deliberate exemption either inline::

    timestamp = datetime.now()  # existcheck: ignore[EX001]

or durably, with a justification, in ``staticcheck-baseline.json``.
"""

from repro.staticcheck.baseline import Baseline, load_baseline
from repro.staticcheck.cache import ResultCache
from repro.staticcheck.engine import CheckResult, analyze_source, run_check
from repro.staticcheck.graph import ProjectGraph, build_graph_from_sources, run_project_rules
from repro.staticcheck.rules import PROJECT_RULES, RULES, Violation

__all__ = [
    "Baseline",
    "CheckResult",
    "PROJECT_RULES",
    "ProjectGraph",
    "RULES",
    "ResultCache",
    "Violation",
    "analyze_source",
    "build_graph_from_sources",
    "load_baseline",
    "run_check",
    "run_project_rules",
]
