"""The EX rule registry: one rule per observed determinism failure mode.

Every rule is a function from a :class:`ModuleContext` (parsed AST plus
import-resolution tables) to a list of :class:`Violation`.  Rules are
registered with the :func:`rule` decorator and run by the engine in
registry order; each is grounded in a bug class this repo actually hit
or guards against by contract (the docstring of each rule names the
contract).

The analysis is deliberately syntactic-plus-aliases, not a type system:
import aliases (``import numpy as np``, ``from time import
perf_counter``) are resolved so rules match the *meaning* of a call, but
no cross-module data flow is attempted.  Where a rule needs flow, it
uses a scope heuristic (e.g. "inside a function that also serializes")
— tight enough that the repo runs clean, loose enough to catch the
regression that motivated it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

# ---------------------------------------------------------------------------
# violation + context plumbing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Violation:
    """One rule finding, with a line-number-independent baseline key."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str
    #: dotted enclosing scope ("ClusterMaster.reconcile" or "<module>")
    scope: str = "<module>"
    #: short symbol the finding anchors on ("datetime.now", "_PATH_CACHE")
    token: str = ""

    @property
    def key(self) -> str:
        """Stable suppression key: survives line-number churn.

        Keys deliberately omit line/col so a baseline entry keeps
        matching while unrelated edits move code around; two identical
        findings in one scope share a key (and one suppression).
        """
        return f"{self.rule}:{self.path}:{self.scope}:{self.token}"

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly form (pool transport and reports)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "scope": self.scope,
            "token": self.token,
            "key": self.key,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Violation":
        """Rebuild a violation from its :meth:`to_dict` form."""
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            message=str(payload["message"]),
            scope=str(payload.get("scope", "<module>")),
            token=str(payload.get("token", "")),
        )


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: str  # repo-relative posix path
    module: str  # dotted module name ("repro.kernel.task")
    source: str
    tree: ast.Module
    #: ``import X [as Y]`` → local name -> dotted module
    import_aliases: Dict[str, str] = field(default_factory=dict)
    #: ``from M import X [as Y]`` → local name -> "M.X"
    from_imports: Dict[str, str] = field(default_factory=dict)
    #: child AST node -> parent (for ancestor walks)
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: node -> dotted scope qualname for functions/classes
    scopes: Dict[ast.AST, str] = field(default_factory=dict)
    #: repo-wide facts from the engine's first pass (identity registry)
    facts: Dict[str, Set[str]] = field(default_factory=dict)
    lines: List[str] = field(default_factory=list)
    #: rule profile: "full" (src) or "relaxed" (tests/benchmarks, where
    #: duration clocks are the measurement instrument, not a bug)
    profile: str = "full"

    @classmethod
    def build(
        cls,
        source: str,
        path: str,
        module: str,
        facts: Optional[Dict[str, Set[str]]] = None,
        profile: str = "full",
    ) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(
            path=path,
            module=module,
            source=source,
            tree=tree,
            facts=facts or {},
            lines=source.splitlines(),
            profile=profile,
        )
        ctx._index_imports()
        ctx._index_structure()
        return ctx

    # -- construction passes ----------------------------------------------

    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c`` binds c=a.b
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.import_aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:  # relative import: resolve against our package
                    package = self.module.split(".")
                    package = package[: len(package) - node.level]
                    base = ".".join(package + ([base] if base else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.from_imports[local] = f"{base}.{alias.name}" if base else alias.name

    def _index_structure(self) -> None:
        def visit(node: ast.AST, scope: str) -> None:
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
                child_scope = scope
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    child_scope = child.name if scope == "<module>" else f"{scope}.{child.name}"
                self.scopes[child] = child_scope
                visit(child, child_scope)

        self.scopes[self.tree] = "<module>"
        visit(self.tree, "<module>")

    # -- queries -----------------------------------------------------------

    def scope_of(self, node: ast.AST) -> str:
        """Dotted class/function scope enclosing ``node``."""
        return self.scopes.get(node, "<module>")

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield ``node``'s AST ancestors, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an attribute/name chain, aliases substituted.

        ``np.random.seed`` → ``numpy.random.seed``; with ``from datetime
        import datetime``, ``datetime.now`` → ``datetime.datetime.now``.
        Returns ``None`` for anything rooted in a non-name expression
        (method calls on locals resolve to ``None``, which is what keeps
        ``rng.random()`` from matching the global-RNG rule).
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = current.id
        if base in self.import_aliases:
            head = self.import_aliases[base]
        elif base in self.from_imports:
            head = self.from_imports[base]
        else:
            head = base
        parts.append(head)
        return ".".join(reversed(parts))

    def line_suppressed(self, line: int, rule_id: str) -> bool:
        """Inline ``# existcheck: ignore[...]`` marker on this line."""
        if not 1 <= line <= len(self.lines):
            return False
        text = self.lines[line - 1]
        marker = text.find("existcheck:")
        if marker == -1:
            return False
        directive = text[marker + len("existcheck:"):].strip()
        if not directive.startswith("ignore"):
            return False
        rest = directive[len("ignore"):].strip()
        if not rest.startswith("["):
            return True  # bare ignore: all rules
        listed = rest[1 : rest.find("]")] if "]" in rest else rest[1:]
        return rule_id in {item.strip() for item in listed.split(",")}


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

RuleFn = Callable[[ModuleContext], List[Violation]]

#: rule id -> (summary, checker); populated by the @rule decorator
RULES: Dict[str, Tuple[str, RuleFn]] = {}


def rule(rule_id: str, summary: str) -> Callable[[RuleFn], RuleFn]:
    """Register a checker under ``rule_id`` in the global registry."""

    def register(fn: RuleFn) -> RuleFn:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = (summary, fn)
        return fn

    return register


def make_violation(
    ctx: ModuleContext,
    rule_id: str,
    node: ast.AST,
    message: str,
    token: str,
) -> Optional[Violation]:
    """Build a violation for ``node`` unless inline-suppressed."""
    line = getattr(node, "lineno", 1)
    if ctx.line_suppressed(line, rule_id):
        return None
    return Violation(
        rule=rule_id,
        path=ctx.path,
        line=line,
        col=getattr(node, "col_offset", 0),
        message=message,
        scope=ctx.scope_of(node),
        token=token,
    )


def _in_repro(ctx: ModuleContext) -> bool:
    if ctx.module == "repro" or ctx.module.startswith("repro."):
        return True
    # relaxed-profile modules (tests/, benchmarks/) opt in to the subset
    # of rules the engine selects for them; the namespace gate must not
    # silently turn that subset off
    return ctx.profile == "relaxed"


def _self_scoped(ctx: ModuleContext) -> bool:
    """The analyzer never simulates; its own sources are out of scope."""
    return ctx.module.startswith("repro.staticcheck")


# ---------------------------------------------------------------------------
# EX001 — wall clock in virtual-time code
# ---------------------------------------------------------------------------

WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: duration clocks — meaningless as timestamps, legitimate as stopwatch
#: reads; the relaxed profile (tests/benchmarks, whose job is timing the
#: host process) exempts exactly these and nothing else
_DURATION_CLOCKS = frozenset({
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
})


@rule("EX001", "wall-clock read in virtual-time code")
def check_wall_clock(ctx: ModuleContext) -> List[Violation]:
    """The simulation runs on integer virtual nanoseconds (ARCHITECTURE
    §1); a single wall-clock read in simulation, kernel, or cluster code
    couples results to host timing and breaks seeded replay.  Benchmark
    *reporting* legitimately timestamps its output — such sites carry a
    baseline entry, not an exception in the rule.
    """
    if not _in_repro(ctx) or _self_scoped(ctx):
        return []
    out: List[Violation] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved in WALL_CLOCK_CALLS:
            if ctx.profile == "relaxed" and resolved in _DURATION_CLOCKS:
                continue
            token = ".".join(resolved.split(".")[-2:])
            violation = make_violation(
                ctx, "EX001", node,
                f"wall-clock call {resolved}() in virtual-time module "
                f"{ctx.module}; derive time from the simulation clock",
                token,
            )
            if violation:
                out.append(violation)
    return out


# ---------------------------------------------------------------------------
# EX002 — global RNG instead of named streams
# ---------------------------------------------------------------------------

#: numpy.random attributes that construct independent generators (pure,
#: no hidden global state) — everything else on the module is the legacy
#: process-global stream
_NP_RANDOM_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


@rule("EX002", "process-global RNG instead of util.rng streams")
def check_global_rng(ctx: ModuleContext) -> List[Violation]:
    """Experiments compare schemes on *identical* executions, so every
    random draw must come from a named :class:`repro.util.rng.RngFactory`
    stream (or a generator seeded via :func:`derive_seed`).  The
    process-global ``random`` / ``numpy.random`` streams are ambient
    state: one extra draw anywhere reorders every later draw, which is
    exactly the cross-run divergence PR 2/3 engineered out.
    """
    if not _in_repro(ctx) or _self_scoped(ctx):
        return []
    out: List[Violation] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved is None:
            continue
        flagged = False
        if resolved.startswith("random.") and resolved.count(".") == 1:
            flagged = True
        elif resolved.startswith("numpy.random."):
            flagged = resolved.split(".")[2] not in _NP_RANDOM_CONSTRUCTORS
        if flagged:
            violation = make_violation(
                ctx, "EX002", node,
                f"process-global RNG call {resolved}(); use a named "
                f"repro.util.rng stream (derive_seed + default_rng)",
                resolved,
            )
            if violation:
                out.append(violation)
    return out


# ---------------------------------------------------------------------------
# shared helper — serialization / hashing scope detection (EX003, EX004)
# ---------------------------------------------------------------------------

_SINK_CALLS = frozenset({
    "json.dump", "json.dumps", "pickle.dump", "pickle.dumps", "struct.pack",
})
_SINK_NAME_HINTS = (
    "to_json", "to_dict", "fingerprint", "cache_key", "serialize",
    "canonical", "digest",
)


def _serialization_reason(ctx: ModuleContext, fn: ast.AST) -> Optional[str]:
    """Why ``fn`` counts as producing serialized/hashed output, if it does."""
    name = getattr(fn, "name", "")
    for hint in _SINK_NAME_HINTS:
        if hint in name:
            return f"function name '{name}'"
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved and (resolved in _SINK_CALLS or resolved.startswith("hashlib.")):
            return resolved
        if isinstance(node.func, ast.Attribute) and node.func.attr in ("digest", "hexdigest"):
            return f".{node.func.attr}()"
    return None


def _unordered_source(node: ast.AST) -> Optional[str]:
    """Token if ``node`` evaluates to an unordered/hash-ordered iterable."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set-literal"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}()"
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("keys", "values", "items")
            and not node.args
        ):
            return f".{func.attr}()"
    return None


#: order-sensitive consumers whose argument order lands in the output
_ORDERED_CONSUMERS = frozenset({"list", "tuple", "iter", "enumerate", "map"})

#: consumers whose result does not depend on argument order — anything
#: nested under one of these has its iteration order normalized away
_ORDER_NORMALIZERS = frozenset({
    "sorted", "set", "frozenset", "min", "max", "sum", "len", "any", "all",
    "Counter", "dict",
})


def _order_normalized(ctx: ModuleContext, site: ast.AST) -> bool:
    """Whether ``site`` sits inside an order-insensitive consumer call.

    ``tuple(sorted(mix.items()))`` and ``sorted(f(x) for x in d.items())``
    are canonical-by-construction; the enclosing ``sorted()``/``set()``
    erases whatever order the inner iteration produced.
    """
    for ancestor in ctx.ancestors(site):
        if isinstance(ancestor, ast.stmt):
            return False  # expressions never span statements
        if (
            isinstance(ancestor, ast.Call)
            and isinstance(ancestor.func, ast.Name)
            and ancestor.func.id in _ORDER_NORMALIZERS
        ):
            return True
    return False


def _iter_sites(fn: ast.AST) -> Iterator[Tuple[ast.AST, ast.AST]]:
    """(site, iterable) pairs where iteration order becomes data order."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                yield node, generator.iter
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _ORDERED_CONSUMERS and node.args:
                yield node, node.args[-1]
            elif isinstance(func, ast.Attribute) and func.attr == "join" and node.args:
                yield node, node.args[0]


# ---------------------------------------------------------------------------
# EX003 — unordered iteration into serialized output
# ---------------------------------------------------------------------------


@rule("EX003", "unordered set/dict iteration feeds serialized output")
def check_unordered_serialization(ctx: ModuleContext) -> List[Violation]:
    """Byte-identity (replay comparisons, decode-cache keys, committed
    DegradationReport JSON) requires every serialized or hashed sequence
    to have a *defined* order.  Set iteration is hash-order; dict views
    are insertion-order, which silently changes when an unrelated code
    path inserts first.  Inside a function that serializes or hashes,
    any iteration whose order lands in the output must go through
    ``sorted()``.
    """
    if not _in_repro(ctx) or _self_scoped(ctx):
        return []
    out: List[Violation] = []
    seen: Set[Tuple[int, int]] = set()
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        reason = _serialization_reason(ctx, fn)
        if reason is None:
            continue
        for site, iterable in _iter_sites(fn):
            token = _unordered_source(iterable)
            if token is None or _order_normalized(ctx, site):
                continue
            mark = (getattr(site, "lineno", 0), getattr(site, "col_offset", 0))
            if mark in seen:  # nested functions are walked twice
                continue
            seen.add(mark)
            violation = make_violation(
                ctx, "EX003", site,
                f"iteration over unordered {token} inside serializing "
                f"function (sink: {reason}); wrap the iterable in sorted()",
                token,
            )
            if violation:
                out.append(violation)
    return out


# ---------------------------------------------------------------------------
# EX004 — id()/hash() in persisted keys or fingerprints
# ---------------------------------------------------------------------------

_KEYISH = ("key", "fingerprint", "cache")


@rule("EX004", "id()/object-hash() used in a persisted key or fingerprint")
def check_identity_keys(ctx: ModuleContext) -> List[Violation]:
    """``id()`` is an address (recycled, per-process) and default object
    ``hash()`` derives from it: neither survives a fork, a rerun, or a
    pickle round-trip.  Content keys (the decode cache's blake2b binary
    fingerprint) are the contract; identity keys are only tolerable for
    in-process memoization whose hits are output-invisible — those carry
    baseline entries with that justification.
    """
    if not _in_repro(ctx) or _self_scoped(ctx):
        return []
    out: List[Violation] = []
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("id", "hash")
            and node.func.id not in ctx.from_imports
        ):
            continue
        context = None
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.Assign):
                names = [
                    target.id
                    for target in ancestor.targets
                    if isinstance(target, ast.Name)
                ]
                if any(k in name.lower() for name in names for k in _KEYISH):
                    context = f"assigned to '{names[0]}'"
                break
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                reason = _serialization_reason(ctx, ancestor)
                if reason is not None:
                    context = f"inside serializing function ({reason})"
                break
        if context is None:
            continue
        violation = make_violation(
            ctx, "EX004", node,
            f"{node.func.id}() {context}: identity is process-local and "
            f"recycled — key on content (see hwtrace.cache.binary_fingerprint)",
            node.func.id,
        )
        if violation:
            out.append(violation)
    return out


# ---------------------------------------------------------------------------
# EX005 — unregistered mutable module-global state
# ---------------------------------------------------------------------------

_CONTAINER_CTORS = frozenset({
    "dict", "list", "set", "collections.OrderedDict", "collections.defaultdict",
    "collections.deque", "collections.Counter", "OrderedDict", "defaultdict",
    "deque", "Counter",
})
_MUTATOR_METHODS = frozenset({
    "append", "add", "extend", "insert", "setdefault", "update", "pop",
    "popitem", "clear", "remove", "discard", "appendleft", "move_to_end",
})


def _module_level_bindings(ctx: ModuleContext) -> Dict[str, Tuple[int, str]]:
    """name -> (line, kind) for module-level simple assignments."""
    bindings: Dict[str, Tuple[int, str]] = {}
    for node in ctx.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            kind = "scalar"
            if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                                  ast.ListComp, ast.SetComp)):
                kind = "container"
            elif isinstance(value, ast.Call):
                resolved = ctx.resolve(value.func) or ""
                if resolved in ("itertools.count", "count"):
                    kind = "count"
                elif resolved in _CONTAINER_CTORS:
                    kind = "container"
            bindings[target.id] = (node.lineno, kind)
    return bindings


def _mutated_names(ctx: ModuleContext, names: Set[str]) -> Set[str]:
    """Subset of module globals mutated or rebound anywhere in the module."""
    mutated: Set[str] = set()
    declared_global: Dict[ast.AST, Set[str]] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Global):
            fn = next(
                (a for a in ctx.ancestors(node)
                 if isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))),
                None,
            )
            if fn is not None:
                declared_global.setdefault(fn, set()).update(
                    n for n in node.names if n in names
                )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if (
                isinstance(base, ast.Name)
                and base.id in names
                and node.func.attr in _MUTATOR_METHODS
            ):
                mutated.add(base.id)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target] if isinstance(node, ast.AugAssign)
                else node.targets
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in names
                ):
                    mutated.add(target.value.id)
    # a ``global X`` function that rebinds X mutates module state
    for fn, globals_here in declared_global.items():
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in globals_here:
                        mutated.add(target.id)
    return mutated


@rule("EX005", "mutable module-global state outside the reset registry")
def check_module_state(ctx: ModuleContext) -> List[Violation]:
    """Replay harnesses reset process-global identity streams through
    :func:`repro.util.identity.reset_identity_counters` — the machinery
    PR 3 retrofitted after the second cluster in one interpreter minted
    different pids (hence different CR3s, hence different trace bytes)
    than the first.  Any module-global ``itertools.count`` stream, any
    mutated module-global container, and any ``global``-rebound module
    flag must therefore be *registered*: either reset by
    ``reset_identity_counters`` or listed (with a why) in
    ``identity.PROCESS_LIFETIME_STATE``.
    """
    if not _in_repro(ctx) or _self_scoped(ctx) or ctx.module == "repro.util.identity":
        return []
    registered = ctx.facts.get("identity_registered", set())
    acknowledged = ctx.facts.get("process_lifetime", set())
    bindings = _module_level_bindings(ctx)
    mutated = _mutated_names(ctx, set(bindings))
    out: List[Violation] = []
    for name, (line, kind) in sorted(bindings.items()):
        if kind == "scalar" and name not in mutated:
            continue
        if kind == "container" and name not in mutated:
            continue  # constant lookup tables are fine
        entry = f"{ctx.module}:{name}"
        if entry in registered or entry in acknowledged:
            continue
        anchor = ast.Name(id=name)
        anchor.lineno = line  # type: ignore[attr-defined]
        anchor.col_offset = 0  # type: ignore[attr-defined]
        ctx.scopes[anchor] = "<module>"
        what = {
            "count": "identity counter stream",
            "container": "mutated container",
            "scalar": "global-rebound flag",
        }[kind]
        violation = make_violation(
            ctx, "EX005", anchor,
            f"module-global {what} '{name}' is not registered with "
            f"repro.util.identity (reset_identity_counters or "
            f"PROCESS_LIFETIME_STATE)",
            name,
        )
        if violation:
            out.append(violation)
    return out


# ---------------------------------------------------------------------------
# EX006 — swallowed decode errors
# ---------------------------------------------------------------------------


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """Body neither re-raises, records, nor inspects the exception."""
    if handler.name is not None:
        for node in ast.walk(handler):
            if isinstance(node, ast.Name) and node.id == handler.name:
                return False
    for statement in handler.body:
        if isinstance(statement, (ast.Pass, ast.Continue)):
            continue
        if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


@rule("EX006", "bare/swallowed exception hides decode-loss accounting")
def check_swallowed_decode_errors(ctx: ModuleContext) -> List[Violation]:
    """The resilient decode path *accounts* for every lost byte
    (``bytes_dropped``, ``decode_resyncs`` in the DegradationReport) —
    that honesty is the graceful-degradation contract.  A bare
    ``except:`` anywhere, or an ``except PacketError/Exception: pass``
    in a module that handles trace packets, silently converts loss into
    drift between the report and reality.
    """
    if not _in_repro(ctx) or _self_scoped(ctx):
        return []
    decode_scope = ctx.module.startswith("repro.hwtrace") or any(
        resolved.endswith(".PacketError") for resolved in ctx.from_imports.values()
    )
    out: List[Violation] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            violation = make_violation(
                ctx, "EX006", node,
                "bare 'except:' catches everything (including "
                "KeyboardInterrupt) and hides loss accounting; name the "
                "exception and record what was dropped",
                "bare-except",
            )
            if violation:
                out.append(violation)
            continue
        if not decode_scope:
            continue
        caught = node.type
        names: List[str] = []
        for expr in caught.elts if isinstance(caught, ast.Tuple) else [caught]:
            resolved = ctx.resolve(expr)
            if resolved:
                names.append(resolved.split(".")[-1])
        if any(name in ("PacketError", "Exception") for name in names) and (
            _handler_swallows(node)
        ):
            violation = make_violation(
                ctx, "EX006", node,
                f"except {'/'.join(names)} swallows a decode error without "
                f"accounting; count it (bytes_dropped/decode_resyncs) or "
                f"re-raise",
                "swallow-" + "-".join(sorted(names)),
            )
            if violation:
                out.append(violation)
    return out


# ---------------------------------------------------------------------------
# interprocedural registry (EX007..EX009) — rules over the ProjectGraph
# ---------------------------------------------------------------------------
#
# These rules receive a ``repro.staticcheck.graph.ProjectGraph`` plus one
# *root module* and must only consult the root and its import closure
# (the cache-soundness contract documented in graph.py).  They are
# registered separately from the per-file rules because the engine
# schedules them differently: per-file results cache on the file's own
# digest; per-root results cache on the root's closure fingerprint.

#: fallback registries used when the analyzed tree's util/rng.py and
#: util/identity.py do not declare their own (foreign trees, fixtures)
DEFAULT_SEED_SINKS = frozenset({
    "random.seed", "random.Random", "numpy.random.seed",
    "numpy.random.default_rng", "numpy.random.SeedSequence",
    "repro.util.rng.RngFactory", "repro.services.workloads.CampaignSpec",
})
DEFAULT_SEED_ROOTS = frozenset({
    "repro.util.rng.derive_seed",
    "repro.util.rng.RngFactory.fork",
    "repro.util.rng.RngFactory.stream",
})
DEFAULT_CANONICALIZERS = frozenset({"float", "int", "str", "repr", "round", "bool"})
DEFAULT_FORK_ENTRY_POINTS = frozenset({
    "repro.parallel.pool.RunPool.map",
    "repro.parallel.pool.RunPool.broadcast",
    "repro.parallel.workers.WorkerPool.map",
    "repro.parallel.workers.WorkerPool.broadcast",
    "repro.parallel.workers.process_pool",
})

#: sinks that fall back to OS entropy when called with no seed at all
_ENTROPY_WHEN_UNSEEDED = frozenset({
    "numpy.random.default_rng", "numpy.random.seed", "numpy.random.SeedSequence",
    "random.seed", "random.Random",
})

# ProjectGraph is intentionally not imported at module level (graph.py
# imports this module); the annotations below stay strings.
ProjectRuleFn = Callable[[object, str], List[Violation]]

#: rule id -> (summary, checker) for whole-program rules
PROJECT_RULES: Dict[str, Tuple[str, ProjectRuleFn]] = {}


def project_rule(rule_id: str, summary: str) -> Callable[[ProjectRuleFn], ProjectRuleFn]:
    """Register an interprocedural checker under ``rule_id``."""

    def register(fn: ProjectRuleFn) -> ProjectRuleFn:
        if rule_id in PROJECT_RULES or rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        PROJECT_RULES[rule_id] = (summary, fn)
        return fn

    return register


def _facts_set(facts: Dict[str, Set[str]], key: str, default: frozenset) -> Set[str]:
    value = facts.get(key)
    return value if value else set(default)


def _enclosing_function(ctx: ModuleContext, node: ast.AST) -> Optional[ast.AST]:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def _enclosing_function_info(graph, ctx: ModuleContext, node: ast.AST):
    """FunctionInfo for the function enclosing ``node``, if indexed."""
    fn = _enclosing_function(ctx, node)
    if fn is None:
        return None
    return graph.functions.get(f"{ctx.module}.{ctx.scope_of(fn)}")


def _local_assignments(fn: Optional[ast.AST], name: str) -> List[ast.expr]:
    """Values assigned to plain name ``name`` inside ``fn`` (any order)."""
    if fn is None:
        return []
    out: List[ast.expr] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == name for t in node.targets):
                out.append(node.value)
        elif (
            isinstance(node, ast.AnnAssign)
            and node.value is not None
            and isinstance(node.target, ast.Name)
            and node.target.id == name
        ):
            out.append(node.value)
    return out


def _range_loop_vars(fn: Optional[ast.AST]) -> Set[str]:
    """Loop variables drawn from range()/enumerate() — integral, ordered."""
    if fn is None:
        return set()
    out: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(node.iter, ast.Call):
            func = node.iter.func
            if isinstance(func, ast.Name) and func.id in ("range", "enumerate"):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        out.add(target.id)
    return out


def _self_class_annotations(graph, ctx: ModuleContext, node: ast.AST) -> Dict[str, str]:
    """Attribute annotations of the class enclosing ``node`` (for self.X)."""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return graph.class_annotations.get(f"{ctx.module}.{ancestor.name}", {})
    return {}


# ---------------------------------------------------------------------------
# EX007 — seed provenance
# ---------------------------------------------------------------------------


def _seed_rooted(graph, ctx: ModuleContext, node: ast.AST, roots: Set[str],
                 canonicalizers: Set[str], fn: Optional[ast.AST], depth: int) -> bool:
    """Whether a seed expression provably derives from an approved root.

    Roots: literals, ``derive_seed``/named-stream calls (transitively,
    through project helper functions), seed-named bindings, and integral
    loop indices; arithmetic over rooted operands stays rooted.
    """
    if depth <= 0:
        return False
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Name):
        if "seed" in node.id.lower():
            return True
        if node.id in _range_loop_vars(fn):
            return True
        assigned = _local_assignments(fn, node.id)
        return bool(assigned) and all(
            _seed_rooted(graph, ctx, value, roots, canonicalizers, fn, depth - 1)
            for value in assigned
        )
    if isinstance(node, ast.Attribute):
        return "seed" in node.attr.lower()
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Attribute) and node.func.attr in ("stream", "fork"):
            return True  # named-stream construction off an RngFactory value
        resolved = ctx.resolve(node.func)
        if resolved is not None:
            if resolved in roots:
                return True
            if resolved.split(".")[-1] in canonicalizers and "." not in resolved:
                return bool(node.args) and _seed_rooted(
                    graph, ctx, node.args[0], roots, canonicalizers, fn, depth - 1
                )
        enclosing = _enclosing_function_info(graph, ctx, node)
        callee = graph.resolve_callable(ctx, node.func, enclosing)
        if callee is not None:
            info = graph.functions[callee]
            returns = [
                n.value for n in ast.walk(info.node)
                if isinstance(n, ast.Return) and n.value is not None
            ]
            return bool(returns) and all(
                _seed_rooted(graph, info.ctx, value, roots, canonicalizers,
                             info.node, depth - 1)
                for value in returns
            )
        return False
    if isinstance(node, ast.BinOp):
        return (
            _seed_rooted(graph, ctx, node.left, roots, canonicalizers, fn, depth - 1)
            and _seed_rooted(graph, ctx, node.right, roots, canonicalizers, fn, depth - 1)
        )
    if isinstance(node, ast.UnaryOp):
        return _seed_rooted(graph, ctx, node.operand, roots, canonicalizers, fn, depth - 1)
    if isinstance(node, ast.IfExp):
        return (
            _seed_rooted(graph, ctx, node.body, roots, canonicalizers, fn, depth - 1)
            and _seed_rooted(graph, ctx, node.orelse, roots, canonicalizers, fn, depth - 1)
        )
    if isinstance(node, (ast.Tuple, ast.List)):
        return all(
            _seed_rooted(graph, ctx, element, roots, canonicalizers, fn, depth - 1)
            for element in node.elts
        )
    if isinstance(node, ast.Subscript):
        return _seed_rooted(graph, ctx, node.value, roots, canonicalizers, fn, depth - 1)
    return False


def _float_typed(graph, ctx: ModuleContext, node: ast.AST,
                 fn: Optional[ast.AST], canonicalizers: Set[str], depth: int = 4) -> bool:
    """Whether an expression is statically float-typed (annotation-driven)."""
    if depth <= 0:
        return False
    if isinstance(node, ast.Constant):
        return False  # a float *literal* has one stable source repr
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return (
            _float_typed(graph, ctx, node.left, fn, canonicalizers, depth - 1)
            or _float_typed(graph, ctx, node.right, fn, canonicalizers, depth - 1)
        )
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id in ("self", "cls"):
            token = _self_class_annotations(graph, ctx, node).get(node.attr, "")
            return token in ("float", "float32", "float64", "floating")
        return False
    if isinstance(node, ast.Name):
        if fn is not None:
            args = getattr(fn, "args", None)
            if args is not None:
                for arg in list(args.args) + list(args.kwonlyargs):
                    if arg.arg == node.id and arg.annotation is not None:
                        from repro.staticcheck.graph import _annotation_token
                        return _annotation_token(arg.annotation) in (
                            "float", "float32", "float64", "floating"
                        )
        for value in _local_assignments(fn, node.id):
            if isinstance(value, ast.Call):
                resolved = ctx.resolve(value.func) or ""
                if resolved in canonicalizers:
                    return False  # normalized through float()/int()/...
                if resolved.split(".")[-1] in ("float64", "float32", "float_"):
                    return True
            if _float_typed(graph, ctx, value, fn, canonicalizers, depth - 1):
                return True
        return False
    if isinstance(node, ast.Call):
        resolved = ctx.resolve(node.func) or ""
        if resolved in canonicalizers:
            return False
        return resolved.split(".")[-1] in ("float64", "float32", "float_")
    return False


def _unordered_label(ctx: ModuleContext, node: ast.AST, fn: Optional[ast.AST]) -> Optional[str]:
    """Token if a derive_seed label stringifies in container order."""
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict-literal"
    token = _unordered_source(node)
    if token is not None:
        return token
    if isinstance(node, ast.Name) and fn is not None:
        args = getattr(fn, "args", None)
        if args is not None:
            for arg in list(args.args) + list(args.kwonlyargs):
                if arg.arg == node.id and arg.annotation is not None:
                    from repro.staticcheck.graph import _annotation_token
                    if _annotation_token(arg.annotation) in ("dict", "Dict", "set", "Set",
                                                            "frozenset", "FrozenSet"):
                        return f"{node.id}: {_annotation_token(arg.annotation)}"
    return None


@project_rule("EX007", "stochastic sink seeded outside util.rng provenance")
def check_seed_provenance(graph, root: str) -> List[Violation]:
    """Every stochastic decision must derive from a named, logically-keyed
    stream: chains reaching ``default_rng``/``random.seed``/``RngFactory``/
    campaign seeds must bottom out in :func:`repro.util.rng.derive_seed`
    (or a seed-named binding whose own provenance is checked at *its*
    sink).  On top of rootedness, labels hashed by ``derive_seed`` (and
    ``RngFactory.stream``/``fork``) must be canonical: a float-typed
    label is flagged unless normalized through ``float()`` first (the
    PR 9 ``loadgen.py`` arrival-rate bug), and dict/set-ordered labels
    are flagged outright.
    """
    ctx = graph.contexts.get(root)
    if ctx is None or not _in_repro(ctx) or _self_scoped(ctx) or ctx.profile != "full":
        return []
    facts = graph.facts
    sinks = _facts_set(facts, "seed_sinks", DEFAULT_SEED_SINKS)
    roots = _facts_set(facts, "seed_roots", DEFAULT_SEED_ROOTS)
    canonicalizers = _facts_set(facts, "seed_canonicalizers", DEFAULT_CANONICALIZERS)
    out: List[Violation] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        fn = _enclosing_function(ctx, node)
        # -- sink rootedness ------------------------------------------------
        if resolved in sinks and ctx.module != "repro.util.rng":
            seed_arg: Optional[ast.expr] = None
            for keyword in node.keywords:
                if keyword.arg == "seed":
                    seed_arg = keyword.value
            if seed_arg is None and node.args:
                seed_arg = node.args[0]
            token = resolved.split(".")[-1]
            if seed_arg is None:
                if resolved in _ENTROPY_WHEN_UNSEEDED and not node.keywords:
                    violation = make_violation(
                        ctx, "EX007", node,
                        f"{resolved}() called without a seed falls back to OS "
                        f"entropy; derive the seed via repro.util.rng.derive_seed",
                        token,
                    )
                    if violation:
                        out.append(violation)
                continue
            if not _seed_rooted(graph, ctx, seed_arg, roots, canonicalizers, fn, 4):
                violation = make_violation(
                    ctx, "EX007", node,
                    f"seed reaching {resolved}() is not rooted in "
                    f"repro.util.rng (derive_seed / named streams / a "
                    f"seed-named binding); its provenance cannot be replayed",
                    token,
                )
                if violation:
                    out.append(violation)
        # -- label canonicality at derivation sites -------------------------
        labels: List[ast.expr] = []
        if resolved in roots and resolved.split(".")[-1] == "derive_seed":
            labels = list(node.args[1:])
        elif isinstance(node.func, ast.Attribute) and node.func.attr in ("stream", "fork") \
                and ctx.module != "repro.util.rng":
            labels = list(node.args)
        for label in labels:
            unordered = _unordered_label(ctx, label, fn)
            if unordered is not None:
                violation = make_violation(
                    ctx, "EX007", label,
                    f"derive_seed label stringifies an unordered {unordered}; "
                    f"its repr depends on insertion/hash order — pass "
                    f"sorted(...) items instead",
                    unordered,
                )
                if violation:
                    out.append(violation)
                continue
            if _float_typed(graph, ctx, label, fn, canonicalizers):
                text = ast.unparse(label)
                violation = make_violation(
                    ctx, "EX007", label,
                    f"float-typed label {text!r} reaches derive_seed "
                    f"uncanonicalized; derive_seed stringifies labels, so "
                    f"repr-distinct numerics (40000 vs 40000.0 vs "
                    f"np.float64(40000)) select different streams — "
                    f"normalize with float(...) into a local first",
                    text,
                )
                if violation:
                    out.append(violation)
    return out


# ---------------------------------------------------------------------------
# EX008 — fork-shared-state races
# ---------------------------------------------------------------------------


def _pool_submission_sites(graph, ctx: ModuleContext,
                           entries: Set[str]) -> List[Tuple[ast.Call, ast.expr]]:
    """(call, task-callable expr) for pool fan-out sites in ``ctx``."""
    entry_methods = {entry.rsplit(".", 1)[-1] for entry in entries if "." in entry}
    entry_ctors = {"RunPool", "WorkerPool", "process_pool"}
    sites: List[Tuple[ast.Call, ast.expr]] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in entry_methods):
            continue
        receiver = func.value
        pool_like = False
        if isinstance(receiver, ast.Name):
            name = receiver.id.lower()
            pool_like = name == "pool" or name.endswith("pool")
            if not pool_like:
                fn = _enclosing_function(ctx, receiver)
                for value in _local_assignments(fn, receiver.id):
                    if isinstance(value, ast.Call):
                        resolved = ctx.resolve(value.func) or ""
                        if resolved.split(".")[-1] in entry_ctors or resolved in entries:
                            pool_like = True
        elif isinstance(receiver, ast.Call):
            resolved = ctx.resolve(receiver.func) or ""
            pool_like = resolved in entries or resolved.split(".")[-1] in entry_ctors
        elif isinstance(receiver, ast.Attribute):
            pool_like = receiver.attr.lower().endswith("pool")
        if pool_like:
            sites.append((node, node.args[0]))
    return sites


def _worker_unsafe_effects(graph, info) -> List[Tuple[ast.AST, str, str]]:
    """(site, name, kind) for unshippable writes inside one function.

    Kinds: ``global`` (module-global container/flag of the function's own
    module), ``module-attr`` (``othermod.attr = ...``), ``default-arg``
    (mutable default argument mutated in place), ``closure`` (nonlocal
    rebind).  Registered state (reset_identity_counters targets and
    PROCESS_LIFETIME_STATE entries) is exempt — those are the declared,
    output-invisible caches.
    """
    ctx = info.ctx
    fn = info.node
    registered = set(graph.facts.get("identity_registered", set()))
    registered |= set(graph.facts.get("process_lifetime", set()))
    module_bindings = set(_module_level_bindings(ctx))
    params = {arg.arg for arg in getattr(fn.args, "args", [])}
    params |= {arg.arg for arg in getattr(fn.args, "kwonlyargs", [])}
    # plain local rebinds shadow the module global (unless declared global)
    declared_global: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    locals_assigned: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id not in declared_global:
                    locals_assigned.add(target.id)
    mutable_defaults: Set[str] = set()
    defaults = list(getattr(fn.args, "defaults", []))
    if defaults:
        for arg, default in zip(fn.args.args[-len(defaults):], defaults):
            if isinstance(default, (ast.Dict, ast.List, ast.Set)):
                mutable_defaults.add(arg.arg)
            elif isinstance(default, ast.Call):
                resolved = ctx.resolve(default.func) or ""
                if resolved in _CONTAINER_CTORS:
                    mutable_defaults.add(arg.arg)

    effects: List[Tuple[ast.AST, str, str]] = []

    def global_target(name: str) -> bool:
        return (
            name in module_bindings
            and name not in params
            and (name in declared_global or name not in locals_assigned)
        )

    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if isinstance(base, ast.Name) and node.func.attr in _MUTATOR_METHODS:
                if base.id in mutable_defaults:
                    effects.append((node, base.id, "default-arg"))
                elif global_target(base.id) and f"{ctx.module}:{base.id}" not in registered:
                    effects.append((node, base.id, "global"))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                    name = target.value.id
                    if name in mutable_defaults:
                        effects.append((node, name, "default-arg"))
                    elif global_target(name) and f"{ctx.module}:{name}" not in registered:
                        effects.append((node, name, "global"))
                elif isinstance(target, ast.Name) and target.id in declared_global:
                    if f"{ctx.module}:{target.id}" not in registered:
                        effects.append((node, target.id, "global"))
                elif isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
                    base_name = target.value.id
                    resolved = None
                    if base_name in ctx.import_aliases:
                        resolved = ctx.import_aliases[base_name]
                    elif base_name in ctx.from_imports:
                        resolved = ctx.from_imports[base_name]
                    if (
                        resolved is not None
                        and resolved in graph.contexts
                        and f"{resolved}:{target.attr}" not in registered
                    ):
                        effects.append(
                            (node, f"{base_name}.{target.attr}", "module-attr")
                        )
        elif isinstance(node, ast.Nonlocal):
            # a nonlocal inside a *nested* helper binds a cell of this
            # function's own frame — intra-task, ships back with the
            # return value.  Only fn's own nonlocals escape the task.
            enclosing = _enclosing_function(ctx, node)
            if enclosing is fn:
                for name in node.names:
                    effects.append((node, name, "closure"))
    return effects


@project_rule("EX008", "worker-side mutation of state that never ships back")
def check_fork_shared_state(graph, root: str) -> List[Violation]:
    """Task callables run in forked pool workers whose memory is discarded
    after the task: only the return value ships back (``ShippedArrays``
    or pickle).  A function reachable from a submitted callable that
    mutates a module global, a closure cell, or a mutable default
    argument therefore diverges silently — the parent never sees the
    write, and the worker drags it into unrelated later tasks (the
    parent/worker divergence class PR 6 hit).  Registered state
    (``reset_identity_counters`` targets, ``PROCESS_LIFETIME_STATE``) is
    exempt: those are the declared output-invisible caches.
    """
    ctx = graph.contexts.get(root)
    if ctx is None or not _in_repro(ctx) or _self_scoped(ctx) or ctx.profile != "full":
        return []
    entries = _facts_set(graph.facts, "fork_entry_points", DEFAULT_FORK_ENTRY_POINTS)
    out: List[Violation] = []
    seen: Set[Tuple[str, int, str]] = set()
    for call, task_arg in _pool_submission_sites(graph, ctx, entries):
        enclosing = _enclosing_function_info(graph, ctx, call)
        task_roots: List[str] = []
        if isinstance(task_arg, ast.Lambda):
            for inner in ast.walk(task_arg.body):
                if isinstance(inner, ast.Call):
                    callee = graph.resolve_callable(ctx, inner.func, enclosing)
                    if callee is not None:
                        task_roots.append(callee)
        else:
            callee = graph.resolve_callable(ctx, task_arg, enclosing)
            if callee is not None:
                task_roots.append(callee)
        if not task_roots:
            continue
        submitted_at = f"{ctx.path}:{call.lineno}"
        for reached in sorted(graph.reachable_from(task_roots)):
            info = graph.functions[reached]
            if info.ctx.module.startswith("repro.staticcheck"):
                continue
            for site, name, kind in _worker_unsafe_effects(graph, info):
                mark = (info.ctx.path, getattr(site, "lineno", 0), name)
                if mark in seen:
                    continue
                seen.add(mark)
                what = {
                    "global": f"module global '{name}'",
                    "module-attr": f"imported-module attribute '{name}'",
                    "default-arg": f"mutable default argument '{name}'",
                    "closure": f"closure cell '{name}' (nonlocal)",
                }[kind]
                violation = make_violation(
                    info.ctx, "EX008", site,
                    f"{info.qualname}() mutates {what} while reachable from "
                    f"worker task callable '{task_roots[0]}' (submitted at "
                    f"{submitted_at}); worker-side writes never ship back to "
                    f"the parent — return the data (ShippedArrays/pickle) or "
                    f"register the state with repro.util.identity",
                    name,
                )
                if violation:
                    out.append(violation)
    return out


# ---------------------------------------------------------------------------
# EX009 — packed-int width safety
# ---------------------------------------------------------------------------


def _guarded_tokens(fn: Optional[ast.AST]) -> Set[str]:
    """Source tokens bound by an assert/raise width guard in ``fn``.

    ``assert x < (1 << k)``, ``if x >= (1 << k): raise`` and mask
    comparisons all register ``x`` — the guard proves the packed field
    cannot silently overflow, which is all EX009 asks for.
    """
    out: Set[str] = set()
    if fn is None:
        return out
    for node in ast.walk(fn):
        test: Optional[ast.expr] = None
        if isinstance(node, ast.Assert):
            test = node.test
        elif isinstance(node, ast.If) and any(
            isinstance(stmt, ast.Raise) for stmt in node.body
        ):
            test = node.test
        if test is None:
            continue
        for compare in ast.walk(test):
            if isinstance(compare, ast.Compare):
                for expr in [compare.left] + list(compare.comparators):
                    if isinstance(expr, (ast.Name, ast.Attribute)):
                        out.add(ast.unparse(expr))
    return out


def _masked_names(fn: Optional[ast.AST]) -> Set[str]:
    """Names whose every assignment is width-bounded (& mask / % mod)."""
    if fn is None:
        return set()
    bounded: Dict[str, bool] = {}
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        is_bounded = isinstance(node.value, ast.BinOp) and isinstance(
            node.value.op, (ast.BitAnd, ast.Mod)
        )
        for target in node.targets:
            if isinstance(target, ast.Name):
                previous = bounded.get(target.id, True)
                bounded[target.id] = previous and is_bounded
    return {name for name, ok in bounded.items() if ok}


def _bits_upper_bound(graph, ctx: ModuleContext, node: ast.AST) -> Optional[int]:
    """Bitmask bounding which bits an int expression can possibly set.

    ``(x & 0xF) << 1`` → ``0x1E``; unknown subexpressions poison the
    bound to ``None``.  Lets EX009 accept deliberate *disjoint* flag ORs
    (``(bits << 1) | 0x20`` stop markers) that a pure width comparison
    would misread as field overflow.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.BitAnd):
            mask = graph.constant_value(ctx, node.right)
            if mask is None:
                mask = graph.constant_value(ctx, node.left)
            return mask if mask is not None and mask >= 0 else None
        if isinstance(node.op, ast.Mod):
            bound = graph.constant_value(ctx, node.right)
            return bound - 1 if bound is not None and bound > 0 else None
        if isinstance(node.op, ast.LShift):
            base = _bits_upper_bound(graph, ctx, node.left)
            shift = graph.constant_value(ctx, node.right)
            if base is None or shift is None or shift < 0 or shift > 63:
                return None
            return base << shift
        if isinstance(node.op, ast.BitOr):
            left = _bits_upper_bound(graph, ctx, node.left)
            right = _bits_upper_bound(graph, ctx, node.right)
            if left is None or right is None:
                return None
            return left | right
    return None


def _field_safe(graph, ctx: ModuleContext, operand: ast.AST, width: Optional[int],
                guards: Set[str], masked: Set[str],
                shifted_bits: Optional[int] = None) -> Optional[str]:
    """None if the OR-ed field provably fits ``width`` bits, else why not."""
    if isinstance(operand, ast.Constant) and isinstance(operand.value, int):
        if width is not None and operand.value >= (1 << width):
            if shifted_bits is not None and (operand.value & shifted_bits) == 0:
                return None  # disjoint flag OR: cannot touch the field
            return f"literal {operand.value} needs more than {width} bits"
        return None
    if isinstance(operand, ast.BinOp) and isinstance(operand.op, (ast.BitAnd, ast.Mod)):
        bound = graph.constant_value(ctx, operand.right)
        if width is not None and bound is not None:
            limit = bound if isinstance(operand.op, ast.Mod) else bound + 1
            if limit > (1 << width):
                return f"mask/modulo admits values above the {width}-bit field"
        return None  # explicitly width-bounded
    if isinstance(operand, (ast.Name, ast.Attribute)):
        token = ast.unparse(operand)
        if token in guards:
            return None
        if isinstance(operand, ast.Name) and operand.id in masked:
            return None
        return f"'{token}' is neither masked nor guarded against its field width"
    if isinstance(operand, ast.Call):
        func = operand.func
        if isinstance(func, ast.Name) and func.id == "int":
            return (
                f"int({ast.unparse(operand.args[0]) if operand.args else ''}) "
                f"truncates silently inside a packed key"
            )
        return f"'{ast.unparse(operand)}' has no provable bit width"
    if isinstance(operand, ast.BinOp) and isinstance(operand.op, ast.BitOr):
        # nested pack: recurse into both fields
        left = _field_safe(graph, ctx, operand.left, None, guards, masked)
        if left is not None:
            return left
        return _field_safe(graph, ctx, operand.right, None, guards, masked)
    if isinstance(operand, ast.BinOp) and isinstance(operand.op, ast.LShift):
        return None  # the shifted-high half; its own pack site checks it
    return f"'{ast.unparse(operand)}' has no provable bit width"


@project_rule("EX009", "packed-int field can overflow its declared width")
def check_packed_widths(graph, root: str) -> List[Violation]:
    """Packed integer keys (``(t << seq_bits | seq) << tok_bits | tok``
    event-heap entries, the scheduler's ``(tid << 10) | core_id`` hook
    keys) silently corrupt neighbouring fields when an OR-ed value
    outgrows its shift width.  Every ``(x << k) | y`` must make ``y``'s
    bound *visible*: a literal that fits, an ``& mask``/``% mod`` bound,
    or an assert/raise guard in the same function.  Shift widths resolve
    through module-level integer constants, including imported ones; a
    constant-width pack that exceeds the 63-bit signed budget is flagged
    outright, as is a bare ``int()`` truncation inside a key.
    """
    ctx = graph.contexts.get(root)
    if ctx is None or not _in_repro(ctx) or _self_scoped(ctx) or ctx.profile != "full":
        return []
    out: List[Violation] = []
    seen: Set[Tuple[str, str]] = set()
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr)):
            continue
        shift = node.left
        if not (isinstance(shift, ast.BinOp) and isinstance(shift.op, ast.LShift)):
            continue
        fn = _enclosing_function(ctx, node)
        guards = _guarded_tokens(fn)
        masked = _masked_names(fn)
        width = graph.constant_value(ctx, shift.right)
        if width is not None and width >= 63:
            violation = make_violation(
                ctx, "EX009", node,
                f"left shift by {width} overflows the 63-bit signed int64 "
                f"budget heaps and numpy columns assume",
                f"<<{width}",
            )
            if violation:
                out.append(violation)
            continue
        # cumulative constant width of nested packs must stay under 63
        total = width
        inner = shift.left
        while (
            total is not None
            and isinstance(inner, ast.BinOp)
            and isinstance(inner.op, (ast.BitOr, ast.LShift))
        ):
            if isinstance(inner.op, ast.LShift):
                inner_width = graph.constant_value(ctx, inner.right)
                total = None if inner_width is None else total + inner_width
                inner = inner.left
            else:
                inner = inner.left
        if total is not None and total >= 63:
            violation = make_violation(
                ctx, "EX009", node,
                f"nested pack shifts total {total} bits — the value field "
                f"overflows the 63-bit signed budget",
                f"<<{total}",
            )
            if violation:
                out.append(violation)
            continue
        reason = _field_safe(
            graph, ctx, node.right, width, guards, masked,
            shifted_bits=_bits_upper_bound(graph, ctx, shift),
        )
        if reason is None:
            continue
        token = ast.unparse(node.right)
        if len(token) > 40:
            token = token[:37] + "..."
        mark = (ctx.scope_of(node), token)
        if mark in seen:
            continue
        seen.add(mark)
        violation = make_violation(
            ctx, "EX009", node,
            f"packed field may overflow its "
            f"{'dynamic' if width is None else str(width) + '-bit'} slot: "
            f"{reason} — mask it (& ((1 << k) - 1)) or guard it "
            f"(assert/raise) in this function",
            token,
        )
        if violation:
            out.append(violation)
    return out
