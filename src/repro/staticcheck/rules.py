"""The EX rule registry: one rule per observed determinism failure mode.

Every rule is a function from a :class:`ModuleContext` (parsed AST plus
import-resolution tables) to a list of :class:`Violation`.  Rules are
registered with the :func:`rule` decorator and run by the engine in
registry order; each is grounded in a bug class this repo actually hit
or guards against by contract (the docstring of each rule names the
contract).

The analysis is deliberately syntactic-plus-aliases, not a type system:
import aliases (``import numpy as np``, ``from time import
perf_counter``) are resolved so rules match the *meaning* of a call, but
no cross-module data flow is attempted.  Where a rule needs flow, it
uses a scope heuristic (e.g. "inside a function that also serializes")
— tight enough that the repo runs clean, loose enough to catch the
regression that motivated it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

# ---------------------------------------------------------------------------
# violation + context plumbing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Violation:
    """One rule finding, with a line-number-independent baseline key."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str
    #: dotted enclosing scope ("ClusterMaster.reconcile" or "<module>")
    scope: str = "<module>"
    #: short symbol the finding anchors on ("datetime.now", "_PATH_CACHE")
    token: str = ""

    @property
    def key(self) -> str:
        """Stable suppression key: survives line-number churn.

        Keys deliberately omit line/col so a baseline entry keeps
        matching while unrelated edits move code around; two identical
        findings in one scope share a key (and one suppression).
        """
        return f"{self.rule}:{self.path}:{self.scope}:{self.token}"

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly form (pool transport and reports)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "scope": self.scope,
            "token": self.token,
            "key": self.key,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Violation":
        """Rebuild a violation from its :meth:`to_dict` form."""
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            message=str(payload["message"]),
            scope=str(payload.get("scope", "<module>")),
            token=str(payload.get("token", "")),
        )


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: str  # repo-relative posix path
    module: str  # dotted module name ("repro.kernel.task")
    source: str
    tree: ast.Module
    #: ``import X [as Y]`` → local name -> dotted module
    import_aliases: Dict[str, str] = field(default_factory=dict)
    #: ``from M import X [as Y]`` → local name -> "M.X"
    from_imports: Dict[str, str] = field(default_factory=dict)
    #: child AST node -> parent (for ancestor walks)
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: node -> dotted scope qualname for functions/classes
    scopes: Dict[ast.AST, str] = field(default_factory=dict)
    #: repo-wide facts from the engine's first pass (identity registry)
    facts: Dict[str, Set[str]] = field(default_factory=dict)
    lines: List[str] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        source: str,
        path: str,
        module: str,
        facts: Optional[Dict[str, Set[str]]] = None,
    ) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(
            path=path,
            module=module,
            source=source,
            tree=tree,
            facts=facts or {},
            lines=source.splitlines(),
        )
        ctx._index_imports()
        ctx._index_structure()
        return ctx

    # -- construction passes ----------------------------------------------

    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c`` binds c=a.b
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.import_aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:  # relative import: resolve against our package
                    package = self.module.split(".")
                    package = package[: len(package) - node.level]
                    base = ".".join(package + ([base] if base else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.from_imports[local] = f"{base}.{alias.name}" if base else alias.name

    def _index_structure(self) -> None:
        def visit(node: ast.AST, scope: str) -> None:
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
                child_scope = scope
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    child_scope = child.name if scope == "<module>" else f"{scope}.{child.name}"
                self.scopes[child] = child_scope
                visit(child, child_scope)

        self.scopes[self.tree] = "<module>"
        visit(self.tree, "<module>")

    # -- queries -----------------------------------------------------------

    def scope_of(self, node: ast.AST) -> str:
        """Dotted class/function scope enclosing ``node``."""
        return self.scopes.get(node, "<module>")

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield ``node``'s AST ancestors, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an attribute/name chain, aliases substituted.

        ``np.random.seed`` → ``numpy.random.seed``; with ``from datetime
        import datetime``, ``datetime.now`` → ``datetime.datetime.now``.
        Returns ``None`` for anything rooted in a non-name expression
        (method calls on locals resolve to ``None``, which is what keeps
        ``rng.random()`` from matching the global-RNG rule).
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = current.id
        if base in self.import_aliases:
            head = self.import_aliases[base]
        elif base in self.from_imports:
            head = self.from_imports[base]
        else:
            head = base
        parts.append(head)
        return ".".join(reversed(parts))

    def line_suppressed(self, line: int, rule_id: str) -> bool:
        """Inline ``# existcheck: ignore[...]`` marker on this line."""
        if not 1 <= line <= len(self.lines):
            return False
        text = self.lines[line - 1]
        marker = text.find("existcheck:")
        if marker == -1:
            return False
        directive = text[marker + len("existcheck:"):].strip()
        if not directive.startswith("ignore"):
            return False
        rest = directive[len("ignore"):].strip()
        if not rest.startswith("["):
            return True  # bare ignore: all rules
        listed = rest[1 : rest.find("]")] if "]" in rest else rest[1:]
        return rule_id in {item.strip() for item in listed.split(",")}


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

RuleFn = Callable[[ModuleContext], List[Violation]]

#: rule id -> (summary, checker); populated by the @rule decorator
RULES: Dict[str, Tuple[str, RuleFn]] = {}


def rule(rule_id: str, summary: str) -> Callable[[RuleFn], RuleFn]:
    """Register a checker under ``rule_id`` in the global registry."""

    def register(fn: RuleFn) -> RuleFn:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = (summary, fn)
        return fn

    return register


def make_violation(
    ctx: ModuleContext,
    rule_id: str,
    node: ast.AST,
    message: str,
    token: str,
) -> Optional[Violation]:
    """Build a violation for ``node`` unless inline-suppressed."""
    line = getattr(node, "lineno", 1)
    if ctx.line_suppressed(line, rule_id):
        return None
    return Violation(
        rule=rule_id,
        path=ctx.path,
        line=line,
        col=getattr(node, "col_offset", 0),
        message=message,
        scope=ctx.scope_of(node),
        token=token,
    )


def _in_repro(ctx: ModuleContext) -> bool:
    return ctx.module == "repro" or ctx.module.startswith("repro.")


def _self_scoped(ctx: ModuleContext) -> bool:
    """The analyzer never simulates; its own sources are out of scope."""
    return ctx.module.startswith("repro.staticcheck")


# ---------------------------------------------------------------------------
# EX001 — wall clock in virtual-time code
# ---------------------------------------------------------------------------

WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


@rule("EX001", "wall-clock read in virtual-time code")
def check_wall_clock(ctx: ModuleContext) -> List[Violation]:
    """The simulation runs on integer virtual nanoseconds (ARCHITECTURE
    §1); a single wall-clock read in simulation, kernel, or cluster code
    couples results to host timing and breaks seeded replay.  Benchmark
    *reporting* legitimately timestamps its output — such sites carry a
    baseline entry, not an exception in the rule.
    """
    if not _in_repro(ctx) or _self_scoped(ctx):
        return []
    out: List[Violation] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved in WALL_CLOCK_CALLS:
            token = ".".join(resolved.split(".")[-2:])
            violation = make_violation(
                ctx, "EX001", node,
                f"wall-clock call {resolved}() in virtual-time module "
                f"{ctx.module}; derive time from the simulation clock",
                token,
            )
            if violation:
                out.append(violation)
    return out


# ---------------------------------------------------------------------------
# EX002 — global RNG instead of named streams
# ---------------------------------------------------------------------------

#: numpy.random attributes that construct independent generators (pure,
#: no hidden global state) — everything else on the module is the legacy
#: process-global stream
_NP_RANDOM_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


@rule("EX002", "process-global RNG instead of util.rng streams")
def check_global_rng(ctx: ModuleContext) -> List[Violation]:
    """Experiments compare schemes on *identical* executions, so every
    random draw must come from a named :class:`repro.util.rng.RngFactory`
    stream (or a generator seeded via :func:`derive_seed`).  The
    process-global ``random`` / ``numpy.random`` streams are ambient
    state: one extra draw anywhere reorders every later draw, which is
    exactly the cross-run divergence PR 2/3 engineered out.
    """
    if not _in_repro(ctx) or _self_scoped(ctx):
        return []
    out: List[Violation] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved is None:
            continue
        flagged = False
        if resolved.startswith("random.") and resolved.count(".") == 1:
            flagged = True
        elif resolved.startswith("numpy.random."):
            flagged = resolved.split(".")[2] not in _NP_RANDOM_CONSTRUCTORS
        if flagged:
            violation = make_violation(
                ctx, "EX002", node,
                f"process-global RNG call {resolved}(); use a named "
                f"repro.util.rng stream (derive_seed + default_rng)",
                resolved,
            )
            if violation:
                out.append(violation)
    return out


# ---------------------------------------------------------------------------
# shared helper — serialization / hashing scope detection (EX003, EX004)
# ---------------------------------------------------------------------------

_SINK_CALLS = frozenset({
    "json.dump", "json.dumps", "pickle.dump", "pickle.dumps", "struct.pack",
})
_SINK_NAME_HINTS = (
    "to_json", "to_dict", "fingerprint", "cache_key", "serialize",
    "canonical", "digest",
)


def _serialization_reason(ctx: ModuleContext, fn: ast.AST) -> Optional[str]:
    """Why ``fn`` counts as producing serialized/hashed output, if it does."""
    name = getattr(fn, "name", "")
    for hint in _SINK_NAME_HINTS:
        if hint in name:
            return f"function name '{name}'"
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved and (resolved in _SINK_CALLS or resolved.startswith("hashlib.")):
            return resolved
        if isinstance(node.func, ast.Attribute) and node.func.attr in ("digest", "hexdigest"):
            return f".{node.func.attr}()"
    return None


def _unordered_source(node: ast.AST) -> Optional[str]:
    """Token if ``node`` evaluates to an unordered/hash-ordered iterable."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set-literal"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}()"
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("keys", "values", "items")
            and not node.args
        ):
            return f".{func.attr}()"
    return None


#: order-sensitive consumers whose argument order lands in the output
_ORDERED_CONSUMERS = frozenset({"list", "tuple", "iter", "enumerate", "map"})

#: consumers whose result does not depend on argument order — anything
#: nested under one of these has its iteration order normalized away
_ORDER_NORMALIZERS = frozenset({
    "sorted", "set", "frozenset", "min", "max", "sum", "len", "any", "all",
    "Counter", "dict",
})


def _order_normalized(ctx: ModuleContext, site: ast.AST) -> bool:
    """Whether ``site`` sits inside an order-insensitive consumer call.

    ``tuple(sorted(mix.items()))`` and ``sorted(f(x) for x in d.items())``
    are canonical-by-construction; the enclosing ``sorted()``/``set()``
    erases whatever order the inner iteration produced.
    """
    for ancestor in ctx.ancestors(site):
        if isinstance(ancestor, ast.stmt):
            return False  # expressions never span statements
        if (
            isinstance(ancestor, ast.Call)
            and isinstance(ancestor.func, ast.Name)
            and ancestor.func.id in _ORDER_NORMALIZERS
        ):
            return True
    return False


def _iter_sites(fn: ast.AST) -> Iterator[Tuple[ast.AST, ast.AST]]:
    """(site, iterable) pairs where iteration order becomes data order."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                yield node, generator.iter
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _ORDERED_CONSUMERS and node.args:
                yield node, node.args[-1]
            elif isinstance(func, ast.Attribute) and func.attr == "join" and node.args:
                yield node, node.args[0]


# ---------------------------------------------------------------------------
# EX003 — unordered iteration into serialized output
# ---------------------------------------------------------------------------


@rule("EX003", "unordered set/dict iteration feeds serialized output")
def check_unordered_serialization(ctx: ModuleContext) -> List[Violation]:
    """Byte-identity (replay comparisons, decode-cache keys, committed
    DegradationReport JSON) requires every serialized or hashed sequence
    to have a *defined* order.  Set iteration is hash-order; dict views
    are insertion-order, which silently changes when an unrelated code
    path inserts first.  Inside a function that serializes or hashes,
    any iteration whose order lands in the output must go through
    ``sorted()``.
    """
    if not _in_repro(ctx) or _self_scoped(ctx):
        return []
    out: List[Violation] = []
    seen: Set[Tuple[int, int]] = set()
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        reason = _serialization_reason(ctx, fn)
        if reason is None:
            continue
        for site, iterable in _iter_sites(fn):
            token = _unordered_source(iterable)
            if token is None or _order_normalized(ctx, site):
                continue
            mark = (getattr(site, "lineno", 0), getattr(site, "col_offset", 0))
            if mark in seen:  # nested functions are walked twice
                continue
            seen.add(mark)
            violation = make_violation(
                ctx, "EX003", site,
                f"iteration over unordered {token} inside serializing "
                f"function (sink: {reason}); wrap the iterable in sorted()",
                token,
            )
            if violation:
                out.append(violation)
    return out


# ---------------------------------------------------------------------------
# EX004 — id()/hash() in persisted keys or fingerprints
# ---------------------------------------------------------------------------

_KEYISH = ("key", "fingerprint", "cache")


@rule("EX004", "id()/object-hash() used in a persisted key or fingerprint")
def check_identity_keys(ctx: ModuleContext) -> List[Violation]:
    """``id()`` is an address (recycled, per-process) and default object
    ``hash()`` derives from it: neither survives a fork, a rerun, or a
    pickle round-trip.  Content keys (the decode cache's blake2b binary
    fingerprint) are the contract; identity keys are only tolerable for
    in-process memoization whose hits are output-invisible — those carry
    baseline entries with that justification.
    """
    if not _in_repro(ctx) or _self_scoped(ctx):
        return []
    out: List[Violation] = []
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("id", "hash")
            and node.func.id not in ctx.from_imports
        ):
            continue
        context = None
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.Assign):
                names = [
                    target.id
                    for target in ancestor.targets
                    if isinstance(target, ast.Name)
                ]
                if any(k in name.lower() for name in names for k in _KEYISH):
                    context = f"assigned to '{names[0]}'"
                break
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                reason = _serialization_reason(ctx, ancestor)
                if reason is not None:
                    context = f"inside serializing function ({reason})"
                break
        if context is None:
            continue
        violation = make_violation(
            ctx, "EX004", node,
            f"{node.func.id}() {context}: identity is process-local and "
            f"recycled — key on content (see hwtrace.cache.binary_fingerprint)",
            node.func.id,
        )
        if violation:
            out.append(violation)
    return out


# ---------------------------------------------------------------------------
# EX005 — unregistered mutable module-global state
# ---------------------------------------------------------------------------

_CONTAINER_CTORS = frozenset({
    "dict", "list", "set", "collections.OrderedDict", "collections.defaultdict",
    "collections.deque", "collections.Counter", "OrderedDict", "defaultdict",
    "deque", "Counter",
})
_MUTATOR_METHODS = frozenset({
    "append", "add", "extend", "insert", "setdefault", "update", "pop",
    "popitem", "clear", "remove", "discard", "appendleft", "move_to_end",
})


def _module_level_bindings(ctx: ModuleContext) -> Dict[str, Tuple[int, str]]:
    """name -> (line, kind) for module-level simple assignments."""
    bindings: Dict[str, Tuple[int, str]] = {}
    for node in ctx.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            kind = "scalar"
            if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                                  ast.ListComp, ast.SetComp)):
                kind = "container"
            elif isinstance(value, ast.Call):
                resolved = ctx.resolve(value.func) or ""
                if resolved in ("itertools.count", "count"):
                    kind = "count"
                elif resolved in _CONTAINER_CTORS:
                    kind = "container"
            bindings[target.id] = (node.lineno, kind)
    return bindings


def _mutated_names(ctx: ModuleContext, names: Set[str]) -> Set[str]:
    """Subset of module globals mutated or rebound anywhere in the module."""
    mutated: Set[str] = set()
    declared_global: Dict[ast.AST, Set[str]] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Global):
            fn = next(
                (a for a in ctx.ancestors(node)
                 if isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))),
                None,
            )
            if fn is not None:
                declared_global.setdefault(fn, set()).update(
                    n for n in node.names if n in names
                )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if (
                isinstance(base, ast.Name)
                and base.id in names
                and node.func.attr in _MUTATOR_METHODS
            ):
                mutated.add(base.id)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target] if isinstance(node, ast.AugAssign)
                else node.targets
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in names
                ):
                    mutated.add(target.value.id)
    # a ``global X`` function that rebinds X mutates module state
    for fn, globals_here in declared_global.items():
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in globals_here:
                        mutated.add(target.id)
    return mutated


@rule("EX005", "mutable module-global state outside the reset registry")
def check_module_state(ctx: ModuleContext) -> List[Violation]:
    """Replay harnesses reset process-global identity streams through
    :func:`repro.util.identity.reset_identity_counters` — the machinery
    PR 3 retrofitted after the second cluster in one interpreter minted
    different pids (hence different CR3s, hence different trace bytes)
    than the first.  Any module-global ``itertools.count`` stream, any
    mutated module-global container, and any ``global``-rebound module
    flag must therefore be *registered*: either reset by
    ``reset_identity_counters`` or listed (with a why) in
    ``identity.PROCESS_LIFETIME_STATE``.
    """
    if not _in_repro(ctx) or _self_scoped(ctx) or ctx.module == "repro.util.identity":
        return []
    registered = ctx.facts.get("identity_registered", set())
    acknowledged = ctx.facts.get("process_lifetime", set())
    bindings = _module_level_bindings(ctx)
    mutated = _mutated_names(ctx, set(bindings))
    out: List[Violation] = []
    for name, (line, kind) in sorted(bindings.items()):
        if kind == "scalar" and name not in mutated:
            continue
        if kind == "container" and name not in mutated:
            continue  # constant lookup tables are fine
        entry = f"{ctx.module}:{name}"
        if entry in registered or entry in acknowledged:
            continue
        anchor = ast.Name(id=name)
        anchor.lineno = line  # type: ignore[attr-defined]
        anchor.col_offset = 0  # type: ignore[attr-defined]
        ctx.scopes[anchor] = "<module>"
        what = {
            "count": "identity counter stream",
            "container": "mutated container",
            "scalar": "global-rebound flag",
        }[kind]
        violation = make_violation(
            ctx, "EX005", anchor,
            f"module-global {what} '{name}' is not registered with "
            f"repro.util.identity (reset_identity_counters or "
            f"PROCESS_LIFETIME_STATE)",
            name,
        )
        if violation:
            out.append(violation)
    return out


# ---------------------------------------------------------------------------
# EX006 — swallowed decode errors
# ---------------------------------------------------------------------------


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """Body neither re-raises, records, nor inspects the exception."""
    if handler.name is not None:
        for node in ast.walk(handler):
            if isinstance(node, ast.Name) and node.id == handler.name:
                return False
    for statement in handler.body:
        if isinstance(statement, (ast.Pass, ast.Continue)):
            continue
        if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


@rule("EX006", "bare/swallowed exception hides decode-loss accounting")
def check_swallowed_decode_errors(ctx: ModuleContext) -> List[Violation]:
    """The resilient decode path *accounts* for every lost byte
    (``bytes_dropped``, ``decode_resyncs`` in the DegradationReport) —
    that honesty is the graceful-degradation contract.  A bare
    ``except:`` anywhere, or an ``except PacketError/Exception: pass``
    in a module that handles trace packets, silently converts loss into
    drift between the report and reality.
    """
    if not _in_repro(ctx) or _self_scoped(ctx):
        return []
    decode_scope = ctx.module.startswith("repro.hwtrace") or any(
        resolved.endswith(".PacketError") for resolved in ctx.from_imports.values()
    )
    out: List[Violation] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            violation = make_violation(
                ctx, "EX006", node,
                "bare 'except:' catches everything (including "
                "KeyboardInterrupt) and hides loss accounting; name the "
                "exception and record what was dropped",
                "bare-except",
            )
            if violation:
                out.append(violation)
            continue
        if not decode_scope:
            continue
        caught = node.type
        names: List[str] = []
        for expr in caught.elts if isinstance(caught, ast.Tuple) else [caught]:
            resolved = ctx.resolve(expr)
            if resolved:
                names.append(resolved.split(".")[-1])
        if any(name in ("PacketError", "Exception") for name in names) and (
            _handler_swallows(node)
        ):
            violation = make_violation(
                ctx, "EX006", node,
                f"except {'/'.join(names)} swallows a decode error without "
                f"accounting; count it (bytes_dropped/decode_resyncs) or "
                f"re-raise",
                "swallow-" + "-".join(sorted(names)),
            )
            if violation:
                out.append(violation)
    return out
