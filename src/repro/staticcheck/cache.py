"""Content-addressed per-module result cache for warm existcheck runs.

The analyzer's cost is dominated by parsing every module and re-running
every rule on every invocation; in a tight edit loop almost nothing has
changed.  This cache mirrors the ``DecodeCache`` design from
:mod:`repro.hwtrace.cache`: results are addressed by *content* (blake2b
of the module source), never by mtime, so a rebuilt checkout with
identical bytes still hits, and a one-byte edit always misses.

Two validity levels per module, matching the two rule tiers:

* **local** (EX001..EX006) results depend only on the module's own
  source — valid while its ``source_hash`` matches;
* **project** (EX007..EX009) results for a *root* module depend on the
  root's whole import closure — valid while ``deps_fp`` (blake2b over
  the sorted ``module:source_hash`` pairs of the closure) matches.  The
  cache-soundness contract in :mod:`repro.staticcheck.graph` is what
  makes this key sufficient: information flows strictly down the import
  graph, so an edit outside the closure cannot change the root's
  findings.

On top of both sits an **analyzer fingerprint** — a digest of the
staticcheck package's own sources plus the facts registries — so
editing a rule, the engine, or a registry invalidates every entry at
once.  Entries also record the profile and rule selection they were
computed under; a profile flip (a file moving between ``src/`` and
``tests/``) misses rather than serving wrong-profile results.

The cache is a *performance* layer only: a cold run, a warm run, and a
run with a deleted cache file produce byte-identical reports, which the
determinism tests assert.  Corrupt or version-skewed cache files are
discarded wholesale, never repaired.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

CACHE_VERSION = 1
DEFAULT_CACHE_NAME = ".staticcheck-cache.json"


def source_digest(source: str) -> str:
    """Stable content address of one module's source text."""
    return hashlib.blake2b(source.encode(), digest_size=16).hexdigest()


def closure_fingerprint(hashes: Dict[str, str], closure: Sequence[str]) -> str:
    """Digest of a root's import closure: ``module:source_hash`` sorted.

    Modules in the closure that have no hash (deleted since the edge was
    recorded, or outside the analyzed set) still contribute their name,
    so appearing/disappearing dependencies change the fingerprint too.
    """
    h = hashlib.blake2b(digest_size=16)
    for module in sorted(set(closure)):
        h.update(module.encode())
        h.update(b"\x1f")
        h.update(hashes.get(module, "<missing>").encode())
        h.update(b"\x1e")
    return h.hexdigest()


def analyzer_fingerprint(facts: Dict[str, set], rule_ids: Sequence[str]) -> str:
    """Digest of the analyzer itself: its sources, registries, and facts.

    Any edit to the staticcheck package, the rule registry, or the
    repo-wide facts (identity/rng registries) must invalidate every
    cached result — rules may have changed meaning.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(str(CACHE_VERSION).encode())
    package_dir = Path(__file__).resolve().parent
    for source_file in sorted(package_dir.glob("*.py")):
        h.update(source_file.name.encode())
        h.update(b"\x1f")
        h.update(hashlib.blake2b(source_file.read_bytes(), digest_size=16).digest())
    for rule_id in sorted(rule_ids):
        h.update(rule_id.encode())
        h.update(b"\x1f")
    for key in sorted(facts):
        h.update(key.encode())
        h.update(b"\x1f")
        for value in sorted(facts[key]):
            h.update(str(value).encode())
            h.update(b"\x1e")
    return h.hexdigest()


@dataclass
class ModuleEntry:
    """Cached analysis state for one module."""

    path: str  # repo-relative posix path
    source_hash: str
    profile: str
    rules: List[str]  # per-file rule selection the entry was computed under
    imports: List[str]  # project-internal direct dependencies
    deps_fp: str  # import-closure fingerprint at project-analysis time
    local: List[Dict[str, object]] = field(default_factory=list)
    project: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form with deterministic member ordering."""
        return {
            "path": self.path,
            "source_hash": self.source_hash,
            "profile": self.profile,
            "rules": list(self.rules),
            "imports": sorted(self.imports),
            "deps_fp": self.deps_fp,
            "local": list(self.local),
            "project": list(self.project),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ModuleEntry":
        """Inverse of :meth:`to_dict`; tolerant of absent optional keys."""
        return cls(
            path=str(payload["path"]),
            source_hash=str(payload["source_hash"]),
            profile=str(payload["profile"]),
            rules=[str(r) for r in payload.get("rules", [])],
            imports=[str(m) for m in payload.get("imports", [])],
            deps_fp=str(payload.get("deps_fp", "")),
            local=list(payload.get("local", [])),
            project=list(payload.get("project", [])),
        )


@dataclass
class ResultCache:
    """The on-disk cache document plus hit/miss bookkeeping."""

    analyzer_fp: str
    modules: Dict[str, ModuleEntry] = field(default_factory=dict)

    # -- validity queries ---------------------------------------------------

    def local_valid(self, module: str, path: str, source_hash: str,
                    profile: str, rules: Sequence[str]) -> bool:
        """Whether the per-file results for ``module`` can be reused."""
        entry = self.modules.get(module)
        return (
            entry is not None
            and entry.path == path
            and entry.source_hash == source_hash
            and entry.profile == profile
            and entry.rules == list(rules)
        )

    def project_valid(self, module: str, deps_fp: str) -> bool:
        """Whether the interprocedural results rooted at ``module`` hold."""
        entry = self.modules.get(module)
        return entry is not None and entry.deps_fp == deps_fp and bool(deps_fp)

    # -- (de)serialization --------------------------------------------------

    def to_json(self) -> str:
        """Serialize compactly with sorted keys (byte-stable on disk)."""
        payload = {
            "version": CACHE_VERSION,
            "analyzer_fp": self.analyzer_fp,
            "modules": {
                module: entry.to_dict()
                for module, entry in sorted(self.modules.items())
            },
        }
        return json.dumps(payload, indent=None, sort_keys=True, separators=(",", ":"))

    def save(self, path: Path) -> None:
        """Write the cache document to ``path``."""
        path.write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Path, analyzer_fp: str) -> "ResultCache":
        """Read the cache; any mismatch degrades to an empty cache.

        A missing file, unparsable JSON, a version bump, or an analyzer
        fingerprint change all mean the same thing — nothing on disk can
        be trusted — and cost only a cold run, never a wrong result.
        """
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return cls(analyzer_fp=analyzer_fp)
        if not isinstance(payload, dict):
            return cls(analyzer_fp=analyzer_fp)
        if payload.get("version") != CACHE_VERSION:
            return cls(analyzer_fp=analyzer_fp)
        if payload.get("analyzer_fp") != analyzer_fp:
            return cls(analyzer_fp=analyzer_fp)
        modules: Dict[str, ModuleEntry] = {}
        try:
            for module, entry in payload.get("modules", {}).items():
                modules[str(module)] = ModuleEntry.from_dict(entry)
        except (KeyError, TypeError, ValueError):
            return cls(analyzer_fp=analyzer_fp)
        return cls(analyzer_fp=analyzer_fp, modules=modules)


def default_cache_path(root: Path) -> Path:
    """Where the cache lives when ``--cache`` is not given (gitignored)."""
    return root / DEFAULT_CACHE_NAME
