"""Table of Physical Addresses (ToPA) output buffers.

ToPA lets the tracer scatter its output across variable-sized memory
regions described by a table of entries; the STOP bit on the final entry
gives the *compulsory* semantics EXIST chooses (drop new data when full,
keeping the trace closest to the anomaly and the memory bound firm, §3.3),
while clearing it yields the conventional ring used by REPT-style
designs (wrap and overwrite the oldest data).

Byte accounting here is the *real-scale* trace volume (the analytic
branches × bytes/branch of :class:`repro.hwtrace.tracer.VolumeModel`), so
buffer-full behaviour happens at the same points it would on hardware.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.util.units import MIB


class OutputMode(enum.Enum):
    """STOP-bit semantics of the final ToPA entry."""

    STOP_ON_FULL = "stop"  # compulsory tracing (EXIST)
    RING = "ring"  # circular overwrite (conventional)


@dataclass(frozen=True)
class ToPAEntry:
    """One output region: physical base and size (power-of-two pages)."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0 or self.size % 4096:
            raise ValueError("ToPA region size must be a positive page multiple")


class ToPAOutput:
    """Cursor over a ToPA table with stop/ring semantics.

    ``write`` returns the number of bytes accepted.  In STOP mode, once
    capacity is exhausted the output is *stopped*: further writes accept
    0 bytes and :attr:`overflowed` latches (the tracer emits one OVF
    packet).  In RING mode all bytes are accepted but only the last
    ``capacity`` bytes are retained; :attr:`wrapped_bytes` counts the
    overwritten volume.
    """

    def __init__(self, entries: List[ToPAEntry], mode: OutputMode):
        if not entries:
            raise ValueError("ToPA table needs at least one entry")
        self.entries = list(entries)
        self.mode = mode
        self.capacity = sum(e.size for e in entries)
        self.written = 0  # bytes currently retained
        self.total_offered = 0  # all bytes the tracer produced
        self.wrapped_bytes = 0
        self.stopped = False
        self.overflowed = False

    @classmethod
    def single_region(
        cls, size_bytes: int, mode: OutputMode = OutputMode.STOP_ON_FULL,
        base: int = 0x1_0000_0000,
    ) -> "ToPAOutput":
        """The common case: one contiguous region with the STOP bit set."""
        size = max(4096, (int(size_bytes) // 4096) * 4096)
        return cls([ToPAEntry(base=base, size=size)], mode)

    def write(self, n_bytes: float) -> int:
        """Offer ``n_bytes`` of trace output; return bytes accepted."""
        n = int(n_bytes)
        if n < 0:
            raise ValueError("negative write")
        self.total_offered += n
        if self.mode is OutputMode.STOP_ON_FULL:
            if self.stopped:
                self.overflowed = True
                return 0
            room = self.capacity - self.written
            accepted = min(room, n)
            self.written += accepted
            if accepted < n:
                self.stopped = True
                self.overflowed = True
            return accepted
        # ring mode: everything is accepted, oldest data overwritten
        overflow = max(0, self.written + n - self.capacity)
        self.wrapped_bytes += overflow
        self.written = min(self.capacity, self.written + n)
        return n

    def constrain(self, fraction: float) -> int:
        """Shrink capacity by ``fraction`` under memory pressure.

        Models a stressed node reclaiming facility pages mid-period: the
        table loses its tail entries, so an output that already consumed
        the surviving capacity latches stopped (STOP mode) exactly as if
        it had filled naturally.  Bytes already written stay written —
        shrinking affects future writes only.  Returns the capacity
        removed in bytes.
        """
        if not 0.0 <= fraction < 1.0:
            raise ValueError("constrain fraction must be in [0, 1)")
        new_capacity = max(4096, (int(self.capacity * (1.0 - fraction)) // 4096) * 4096)
        removed = self.capacity - new_capacity
        if removed <= 0:
            return 0
        self.capacity = new_capacity
        if self.written >= self.capacity:
            self.written = self.capacity
            if self.mode is OutputMode.STOP_ON_FULL:
                self.stopped = True
                self.overflowed = True
        return removed

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.written

    def reset(self) -> None:
        """Rearm for a new tracing period (after a dump)."""
        self.written = 0
        self.total_offered = 0
        self.wrapped_bytes = 0
        self.stopped = False
        self.overflowed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ToPAOutput({self.written / MIB:.1f}/{self.capacity / MIB:.1f} MiB, "
            f"mode={self.mode.value}, stopped={self.stopped})"
        )
