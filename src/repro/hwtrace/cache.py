"""Repetition-aware decode cache (the RCO observation applied to decode).

EXIST's RCO (§3.4) rests on the fact that replicas of one service run the
*same binary* and therefore produce heavily repeated control-flow.  The
encoded consequence is visible at the byte level: every trace segment
serializes as ``PSB TSC PIP (TNT TIP)* [OVF]``, and sibling repetitions
(and repeated tracing waves of the same app) emit segments whose *event
bodies* are identical — only the ``TSC`` timestamp and ``PIP`` CR3 in the
32-byte header differ.  Decoding such a stream from scratch re-resolves
the same addresses against the same binary over and over.

:class:`DecodeCache` removes that redundancy.  It is content-addressed:
the key of one PSB-aligned chunk is ``(binary fingerprint for the
chunk's CR3, body bytes)`` where the body is everything after the 32-byte
``PSB TSC PIP`` header.  The cached value is the chunk's reconstruction
result with the context stripped out — resolved block ids, function ids,
and the unresolved count — which the cached decode path re-bases onto
each chunk's own timestamp and CR3.  Identical segments therefore decode
once per cache lifetime, no matter which replica, wave, or campaign they
came from.

Correctness contract: the cached path is byte-identical to the uncached
one.  It only engages for *fully canonical* streams (every chunk is
``PSB TSC PIP`` + well-formed event records + optional trailing ``OVF``
— exactly what :func:`repro.hwtrace.decoder.encode_trace` emits); any
deviation (corruption, truncation, hand-built packet mixes, bytes before
the first PSB) makes the decoder fall back to the ordinary full-stream
scan, so error offsets, resynchronization counts, and PTWRITE handling
are those of the uncached implementation by construction.

Invalidation is structural, not temporal: the per-CR3 binary fingerprint
participates in every key, so replacing the binary mapped at a CR3
changes the key and old entries simply stop matching (and age out of the
LRU).  Entries are evicted least-recently-used under a ``max_bytes``
budget.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

#: sentinel fingerprint for CR3s with no registered binary; every TIP in
#: such a chunk is unresolved, which depends only on the body content
UNKNOWN_BINARY_FP = b"\x00<unknown-binary>"

_EMPTY_I64 = np.empty(0, dtype=np.int64)


def binary_fingerprint(binary) -> bytes:
    """Content fingerprint of a :class:`~repro.program.binary.Binary`.

    Hashes the decode-relevant content — name, base address, block start
    addresses, and per-block function ids — so two binaries that resolve
    TIP addresses identically share a fingerprint and regenerated copies
    of the same binary (e.g. in pool workers) hit the same cache entries.
    The digest is memoized on the instance.
    """
    cached = getattr(binary, "_decode_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.blake2b(digest_size=16)
    digest.update(binary.name.encode())
    digest.update(int(binary.base_address).to_bytes(8, "little"))
    digest.update(np.ascontiguousarray(binary.block_addresses).tobytes())
    digest.update(np.ascontiguousarray(binary.block_function_ids).tobytes())
    fingerprint = digest.digest()
    binary._decode_fingerprint = fingerprint
    return fingerprint


class ChunkEntry:
    """Cached reconstruction of one chunk body (context-free).

    ``block_ids`` / ``function_ids`` hold only the *resolved* records (in
    body order); ``unresolved`` counts the dropped ones; ``n_records`` is
    the body's total event-record count.  Timestamps and CR3s are not
    stored — they re-base from each matching chunk's own header.
    """

    __slots__ = ("block_ids", "function_ids", "unresolved", "n_records")

    def __init__(
        self,
        block_ids: np.ndarray,
        function_ids: np.ndarray,
        unresolved: int,
        n_records: int,
    ):
        self.block_ids = block_ids
        self.function_ids = function_ids
        self.unresolved = unresolved
        self.n_records = n_records

    @property
    def cost_bytes(self) -> int:
        return int(self.block_ids.nbytes + self.function_ids.nbytes) + 64


class DecodeCache:
    """LRU cache of decoded chunk bodies, keyed on content.

    Keys are ``(binary fingerprint, body bytes)``; values are
    :class:`ChunkEntry` objects.  The cache is safe to share across
    decoders, threads (``decode_many``'s thread fan-out), tasks, and
    campaigns — sharing is the point: one process-wide instance (see
    :func:`process_decode_cache`) amortizes decode work across every
    reconcile in the process.
    """

    def __init__(self, max_bytes: int = 256 * 1024 * 1024):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self._entries: Dict[Tuple[bytes, bytes], ChunkEntry] = {}
        self._lock = threading.Lock()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0
        #: body bytes served from cache instead of being re-decoded
        self.bytes_saved = 0
        #: body bytes decoded and inserted
        self.bytes_decoded = 0
        #: streams that bypassed the cache (non-canonical / corrupt)
        self.fallbacks = 0

    # -- lookup / insert ---------------------------------------------------

    def get(self, key: Tuple[bytes, bytes]) -> Optional[ChunkEntry]:
        """Entry for ``key`` (refreshing its LRU position), or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            # dicts preserve insertion order: re-insert to mark recency
            del self._entries[key]
            self._entries[key] = entry
            self.hits += 1
            self.bytes_saved += len(key[1])
            return entry

    def put(self, key: Tuple[bytes, bytes], entry: ChunkEntry) -> None:
        """Insert ``entry``, evicting least-recently-used past the budget."""
        cost = entry.cost_bytes + len(key[1])
        with self._lock:
            if cost > self.max_bytes:
                return  # larger than the whole budget: not worth caching
            old = self._entries.pop(key, None)
            if old is not None:
                self.current_bytes -= old.cost_bytes + len(key[1])
            self._entries[key] = entry
            self.current_bytes += cost
            self.insertions += 1
            self.bytes_decoded += len(key[1])
            while self.current_bytes > self.max_bytes:
                evicted_key, evicted = next(iter(self._entries.items()))
                del self._entries[evicted_key]
                self.current_bytes -= evicted.cost_bytes + len(evicted_key[1])
                self.evictions += 1

    def note_fallback(self) -> None:
        """Record one stream that had to bypass the cached path."""
        with self._lock:
            self.fallbacks += 1

    # -- bookkeeping -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        """Flat, JSON-friendly statistics snapshot."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "current_bytes": self.current_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": round(self.hit_rate, 4),
                "evictions": self.evictions,
                "insertions": self.insertions,
                "bytes_saved": self.bytes_saved,
                "bytes_decoded": self.bytes_decoded,
                "fallbacks": self.fallbacks,
            }

    def clear(self) -> None:
        """Drop all entries and reset the statistics."""
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0
            self.hits = self.misses = self.evictions = 0
            self.insertions = self.bytes_saved = self.bytes_decoded = 0
            self.fallbacks = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecodeCache(entries={len(self._entries)}, "
            f"bytes={self.current_bytes}/{self.max_bytes}, "
            f"hits={self.hits}, misses={self.misses})"
        )


#: the process-wide cache ClusterMaster shares across waves and campaigns
_PROCESS_CACHE: Optional[DecodeCache] = None


def process_decode_cache() -> DecodeCache:
    """The process-wide shared decode cache (created on first use).

    Pool workers forked *after* the parent warmed this cache inherit its
    entries through copy-on-write memory; entries a worker adds afterwards
    stay local to that worker.
    """
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = DecodeCache()
    return _PROCESS_CACHE


# ---------------------------------------------------------------------------
# canonical chunk analysis (vectorized)
# ---------------------------------------------------------------------------

#: byte layout of a canonical chunk header: PSB(16) TSC(1+7) PIP(2+6)
CHUNK_HEADER_BYTES = 32
_TSC_OFF = 16
_PIP_OFF = 24


class ChunkPlan:
    """PSB-aligned split of one stream, with vectorized header analysis.

    ``starts``/``ends`` delimit each chunk; ``canonical_headers`` marks
    chunks opening with the exact ``PSB TSC PIP`` header, whose timestamp
    and CR3 are pre-extracted into ``times``/``cr3s`` (body validation is
    content-based and happens lazily, on cache misses only — a body that
    ever validated stays valid wherever its bytes reappear).
    """

    __slots__ = (
        "starts", "ends", "canonical_headers", "times", "cr3s", "tail_ovf"
    )

    def __init__(self, starts, ends, canonical_headers, times, cr3s, tail_ovf):
        self.starts = starts
        self.ends = ends
        self.canonical_headers = canonical_headers
        self.times = times
        self.cr3s = cr3s
        #: chunk closes with an OVF marker (counts one overflow)
        self.tail_ovf = tail_ovf

    def __len__(self) -> int:
        return int(self.starts.size)

    @property
    def all_canonical(self) -> bool:
        return bool(self.canonical_headers.all())


def find_psb_offsets(data: bytes, psb: bytes) -> List[int]:
    """All non-overlapping PSB positions, in ``bytes.find`` order.

    Matches the resynchronization search of the resilient scanner, so the
    chunk boundaries equal the only positions a resync can land on.
    """
    offsets: List[int] = []
    position = data.find(psb)
    while position != -1:
        offsets.append(position)
        position = data.find(psb, position + len(psb))
    return offsets


def _gather_le(buf: np.ndarray, starts: np.ndarray, offset: int, width: int) -> np.ndarray:
    """Little-endian ints of ``width`` bytes at ``starts + offset`` (int64)."""
    out = np.zeros(starts.size, dtype=np.int64)
    for byte_index in range(width):
        out |= buf[starts + (offset + byte_index)].astype(np.int64) << (
            8 * byte_index
        )
    return out


def plan_chunks(data: bytes, buf: np.ndarray, psb: bytes) -> Optional[ChunkPlan]:
    """Split ``data`` on PSB boundaries and analyze chunk headers.

    Returns ``None`` when the stream does not start with a PSB at offset
    zero (the cached path then falls back to the full-stream scan).
    """
    offsets = find_psb_offsets(data, psb)
    if not offsets or offsets[0] != 0:
        return None
    starts = np.asarray(offsets, dtype=np.int64)
    ends = np.empty_like(starts)
    ends[:-1] = starts[1:]
    ends[-1] = len(data)
    lengths = ends - starts

    n = len(data)
    long_enough = lengths >= CHUNK_HEADER_BYTES
    # clip probe indices so short chunks index safely (masked out anyway)
    tsc_at = np.minimum(starts + _TSC_OFF, n - 1)
    pip_at = np.minimum(starts + _PIP_OFF, n - 2)
    canonical = (
        long_enough
        & (buf[tsc_at] == 0x19)
        & (buf[pip_at] == 0x02)
        & (buf[pip_at + 1] == 0x43)
    )

    body_len = lengths - CHUNK_HEADER_BYTES
    remainder = np.where(canonical, body_len % 8, -1)
    tail_ovf = remainder == 2
    ovf_at = np.maximum(ends - 2, 0)
    tail_ok = tail_ovf & (buf[ovf_at] == 0x02) & (buf[np.minimum(ovf_at + 1, n - 1)] == 0xF3)
    canonical = canonical & ((remainder == 0) | tail_ok)

    # canonical chunks always have 32 in-bounds header bytes; zero the
    # start of non-canonical ones so the masked gather never indexes past
    # the buffer end
    safe_starts = np.where(canonical, starts, 0)
    times = np.where(canonical, _gather_le(buf, safe_starts, _TSC_OFF + 1, 7), 0)
    cr3s = np.where(canonical, _gather_le(buf, safe_starts, _PIP_OFF + 2, 6), 0)
    return ChunkPlan(
        starts=starts,
        ends=ends,
        canonical_headers=canonical,
        times=times,
        cr3s=cr3s,
        tail_ovf=tail_ovf & canonical,
    )
