"""Software trace decoder (the libipt stand-in).

Two halves:

* :func:`encode_trace` — serialize captured :class:`TraceSegment`s into a
  binary packet stream (what the hardware would have written to memory
  and the facility uploaded to object storage);
* :class:`SoftwareDecoder` — parse that stream back and reconstruct the
  control flow against the program binaries, producing
  :class:`DecodedRecord`s (timestamped block executions attributed to a
  process via PIP/CR3).

The round trip is genuine: the decoder sees only bytes and binaries, and
every reconstruction consumed by the analysis layer flows through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.hwtrace.packets import (
    OvfPacket,
    PipPacket,
    PsbPacket,
    PtwPacket,
    TipPacket,
    TntPacket,
    TscPacket,
    encode_packets,
    parse_stream,
    parse_stream_resilient,
)
from repro.hwtrace.tracer import TraceSegment
from repro.program.binary import Binary


def encode_trace(segments: Sequence[TraceSegment]) -> bytes:
    """Serialize captured segments into one packet stream.

    Each segment becomes ``PSB TSC PIP (TNT TIP)* [OVF]``: per captured
    symbolic event, one TNT byte carries representative conditional
    branch outcomes and one TIP carries the event's block address.  A
    truncated segment ends with an OVF packet so the decoder knows data
    was lost there.
    """
    packets: List[object] = []
    for segment in segments:
        packets.append(PsbPacket())
        packets.append(TscPacket(segment.t_start))
        packets.append(PipPacket(segment.cr3))
        events = segment.path_model.events(
            segment.event_start, segment.captured_event_end
        )
        binary = segment.path_model.binary
        blocks = binary.blocks
        walk = events.tolist()
        for position, block_id in enumerate(walk):
            # representative TNT bits: taken-pattern derived from the
            # block id so the payload is deterministic and non-trivial
            bits = tuple(bool((block_id >> k) & 1) for k in range(4))
            packets.append(TntPacket(bits))
            packets.append(TipPacket(blocks[block_id].address))
        if segment.truncated:
            packets.append(OvfPacket())
    return encode_packets(packets)  # type: ignore[arg-type]


@dataclass(frozen=True)
class DecodedRecord:
    """One reconstructed block execution."""

    timestamp: int
    cr3: int
    block_id: int
    function_id: int


@dataclass
class DecodedTrace:
    """Reconstruction result for one packet stream."""

    records: List[DecodedRecord] = field(default_factory=list)
    #: count of OVF packets seen (data-loss points)
    overflows: int = 0
    #: TIP addresses that matched no known binary block
    unresolved: int = 0
    #: PSB resynchronizations performed on corrupt input
    resyncs: int = 0
    #: PTWRITE payloads, timestamped ((time, cr3, value))
    ptwrites: List[tuple] = field(default_factory=list)

    def block_sequence(self, cr3: Optional[int] = None) -> List[int]:
        """Ordered block ids (optionally restricted to one process)."""
        return [
            r.block_id
            for r in self.records
            if cr3 is None or r.cr3 == cr3
        ]

    def function_histogram(self, cr3: Optional[int] = None) -> Dict[int, int]:
        """function_id -> occurrence count."""
        hist: Dict[int, int] = {}
        for record in self.records:
            if cr3 is not None and record.cr3 != cr3:
                continue
            hist[record.function_id] = hist.get(record.function_id, 0) + 1
        return hist

    def visit_counts(self, n_blocks: int, cr3: Optional[int] = None) -> np.ndarray:
        """Per-block execution counts over the reconstruction."""
        counts = np.zeros(n_blocks, dtype=np.int64)
        for record in self.records:
            if cr3 is None or record.cr3 == cr3:
                counts[record.block_id] += 1
        return counts

    def time_span(self) -> Optional[tuple]:
        """(first, last) record timestamp, or None when empty."""
        if not self.records:
            return None
        times = [r.timestamp for r in self.records]
        return (min(times), max(times))

    def __len__(self) -> int:
        return len(self.records)


class SoftwareDecoder:
    """Reconstructs execution flow from packet bytes and binaries.

    ``binaries`` maps CR3 values to program binaries, mirroring how the
    production decoder fetches binaries from the binary repository keyed
    by the traced process (§4).
    """

    def __init__(self, binaries: Mapping[int, Binary]):
        self._binaries = dict(binaries)
        self._address_maps: Dict[int, Dict[int, int]] = {
            cr3: {block.address: block.block_id for block in binary.blocks}
            for cr3, binary in self._binaries.items()
        }

    @classmethod
    def for_processes(cls, processes: Iterable[object]) -> "SoftwareDecoder":
        """Build from kernel :class:`Process` objects carrying binaries."""
        mapping = {}
        for process in processes:
            binary = getattr(process, "binary", None)
            if isinstance(binary, Binary):
                mapping[process.cr3] = binary
        return cls(mapping)

    def decode(self, data: bytes, resilient: bool = False) -> DecodedTrace:
        """Parse and reconstruct one core's packet stream.

        ``resilient`` enables PSB resynchronization on corrupt input (the
        production decoder's behaviour); strict mode raises on bad
        framing, which is what tests and integrity checks want.
        """
        trace = DecodedTrace()
        current_time = 0
        current_cr3 = 0
        address_map: Optional[Dict[int, int]] = None
        binary: Optional[Binary] = None
        if resilient:
            packets, trace.resyncs = parse_stream_resilient(data)
        else:
            packets = parse_stream(data)
        for packet in packets:
            if isinstance(packet, TscPacket):
                current_time = packet.timestamp
            elif isinstance(packet, PipPacket):
                current_cr3 = packet.cr3
                binary = self._binaries.get(current_cr3)
                address_map = self._address_maps.get(current_cr3)
            elif isinstance(packet, TipPacket):
                if address_map is None or binary is None:
                    trace.unresolved += 1
                    continue
                block_id = address_map.get(packet.address)
                if block_id is None:
                    trace.unresolved += 1
                    continue
                trace.records.append(
                    DecodedRecord(
                        timestamp=current_time,
                        cr3=current_cr3,
                        block_id=block_id,
                        function_id=binary.blocks[block_id].function_id,
                    )
                )
            elif isinstance(packet, OvfPacket):
                trace.overflows += 1
            elif isinstance(packet, PtwPacket):
                trace.ptwrites.append((current_time, current_cr3, packet.value))
            # PSB and TNT packets carry no event-level information here:
            # PSB is sync, TNT intra-event detail below symbolic resolution
        return trace

    def decode_many(self, streams: Iterable[bytes]) -> DecodedTrace:
        """Decode several per-core streams and merge by timestamp."""
        merged = DecodedTrace()
        for data in streams:
            decoded = self.decode(data)
            merged.records.extend(decoded.records)
            merged.overflows += decoded.overflows
            merged.unresolved += decoded.unresolved
        merged.records.sort(key=lambda r: r.timestamp)
        return merged
