"""Software trace decoder (the libipt stand-in).

Two halves:

* :func:`encode_trace` — serialize captured :class:`TraceSegment`s into a
  binary packet stream (what the hardware would have written to memory
  and the facility uploaded to object storage);
* :class:`SoftwareDecoder` — parse that stream back and reconstruct the
  control flow against the program binaries, producing a
  :class:`DecodedTrace` (timestamped block executions attributed to a
  process via PIP/CR3).

The round trip is genuine: the decoder sees only bytes and binaries, and
every reconstruction consumed by the analysis layer flows through it.

Throughput architecture: both directions are columnar.  The encoder
assembles each segment's event body from preallocated numpy byte arrays
(:func:`repro.hwtrace.codec.encode_event_records`) and the decoder scans
packet framing with numpy (:mod:`repro.hwtrace.codec`), forward-fills
TSC/PIP context over the packet columns, and resolves TIP addresses to
blocks with a sorted-array ``searchsorted`` — no per-packet or per-record
Python objects exist on the hot path.  The result is a
structure-of-arrays :class:`DecodedTrace` whose ``records`` property
remains available as an object-level compatibility view, and
:meth:`SoftwareDecoder.decode_objects` keeps the original per-packet
reference implementation for golden comparisons.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.hwtrace.cache import (
    CHUNK_HEADER_BYTES,
    UNKNOWN_BINARY_FP,
    ChunkEntry,
    DecodeCache,
    binary_fingerprint,
    plan_chunks,
    process_decode_cache,
)
from repro.hwtrace.codec import (
    KIND_OVF,
    KIND_PIP,
    KIND_PTW,
    KIND_TIP,
    KIND_TNT,
    KIND_TSC,
    ScannedStream,
    _le6,
    encode_event_records,
    scan_stream,
    scan_stream_resilient,
)
from repro.hwtrace.packets import (
    OVF_BYTES,
    PSB_BYTES,
    OvfPacket,
    PipPacket,
    PsbPacket,
    PtwPacket,
    TipPacket,
    TntPacket,
    TscPacket,
    encode_packets,
    parse_stream,
    parse_stream_resilient,
)
from repro.hwtrace.tracer import TraceSegment
from repro.program.binary import Binary

_EMPTY_I64 = np.empty(0, dtype=np.int64)

#: TIP header byte of an 8-byte event record (codec framing)
_TIP_HEADER_BYTE = 0x0D

#: shared entry for canonical chunks with no event records
_EMPTY_ENTRY = ChunkEntry(
    block_ids=_EMPTY_I64, function_ids=_EMPTY_I64, unresolved=0, n_records=0
)


def _valid_record_words(words: np.ndarray) -> bool:
    """True when every uint64 record word has canonical TNT/TIP framing.

    Word layout (little-endian): byte0 = TNT (even, >= 4), byte1 = TIP
    header, bytes 2..7 = 48-bit address in the word's high bits.
    """
    if words.size == 0:
        return True
    return bool(
        (
            ((words & 0x01) == 0)
            & ((words & 0xFF) >= 4)
            & ((words & 0xFF00) == _TIP_HEADER_BYTE << 8)
        ).all()
    )


def split_canonical_stream(data: bytes) -> Optional[List[Tuple[int, bytes]]]:
    """Split a canonical upload into per-chunk ``(cr3, body)`` work units.

    Returns one entry per PSB chunk of a fully canonical stream — the
    body is everything after the 32-byte ``PSB TSC PIP`` header with any
    trailing OVF stripped, ready for
    :meth:`SoftwareDecoder.decode_chunk` — or ``None`` when the upload is
    empty, is not a pure canonical chunk sequence, or any event record is
    malformed.  ``None`` signals that the bytes need the full resilient
    scan (or a dead-letter quarantine) instead of incremental decode.
    """
    if not data:
        return None
    buf = np.frombuffer(data, dtype=np.uint8)
    plan = plan_chunks(data, buf, PSB_BYTES)
    if plan is None or not plan.all_canonical:
        return None
    starts = plan.starts.tolist()
    ends = plan.ends.tolist()
    tails = plan.tail_ovf.tolist()
    bodies = [
        data[start + CHUNK_HEADER_BYTES : end - (2 if tail else 0)]
        for start, end, tail in zip(starts, ends, tails)
    ]
    records = np.frombuffer(b"".join(bodies), dtype=np.uint8)
    if records.size % 8:
        return None
    if not _valid_record_words(records.reshape(-1, 8).view("<u8").ravel()):
        return None
    return list(zip(plan.cr3s.tolist(), bodies))


def encode_trace(segments: Sequence[TraceSegment]) -> bytes:
    """Serialize captured segments into one packet stream.

    Each segment becomes ``PSB TSC PIP (TNT TIP)* [OVF]``: per captured
    symbolic event, one TNT byte carries representative conditional
    branch outcomes and one TIP carries the event's block address.  A
    truncated segment ends with an OVF packet so the decoder knows data
    was lost there.

    The event body is assembled columnar (one vectorized pass per
    segment); the bytes are identical to what per-packet object encoding
    produced.
    """
    parts: List[bytes] = []
    for segment in segments:
        parts.append(PSB_BYTES)
        parts.append(TscPacket(segment.t_start).encode())
        parts.append(PipPacket(segment.cr3).encode())
        events = segment.captured_block_ids()
        binary = segment.path_model.binary
        parts.append(
            encode_event_records(events, binary.block_addresses[events])
        )
        if segment.truncated:
            parts.append(OVF_BYTES)
    return b"".join(parts)


class DecodedRecord:
    """One reconstructed block execution (object view of one SoA row)."""

    __slots__ = ("timestamp", "cr3", "block_id", "function_id")

    def __init__(self, timestamp: int, cr3: int, block_id: int, function_id: int):
        self.timestamp = timestamp
        self.cr3 = cr3
        self.block_id = block_id
        self.function_id = function_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecodedRecord(timestamp={self.timestamp}, cr3={self.cr3:#x}, "
            f"block_id={self.block_id}, function_id={self.function_id})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DecodedRecord):
            return NotImplemented
        return (
            self.timestamp == other.timestamp
            and self.cr3 == other.cr3
            and self.block_id == other.block_id
            and self.function_id == other.function_id
        )

    def __hash__(self) -> int:
        return hash((self.timestamp, self.cr3, self.block_id, self.function_id))


class DecodedTrace:
    """Reconstruction result for one packet stream, structure-of-arrays.

    Four parallel int64 arrays hold one reconstructed block execution per
    index: ``timestamps``, ``cr3s``, ``block_ids``, ``function_ids``.
    All aggregation helpers operate on the columns directly; the
    ``records`` property materializes the old object-level view for
    callers that still want :class:`DecodedRecord` instances.
    """

    def __init__(
        self,
        timestamps: Optional[np.ndarray] = None,
        cr3s: Optional[np.ndarray] = None,
        block_ids: Optional[np.ndarray] = None,
        function_ids: Optional[np.ndarray] = None,
        overflows: int = 0,
        unresolved: int = 0,
        resyncs: int = 0,
        ptwrites: Optional[List[tuple]] = None,
        bytes_skipped: int = 0,
    ):
        self.timestamps = timestamps if timestamps is not None else _EMPTY_I64
        self.cr3s = cr3s if cr3s is not None else _EMPTY_I64
        self.block_ids = block_ids if block_ids is not None else _EMPTY_I64
        self.function_ids = function_ids if function_ids is not None else _EMPTY_I64
        #: count of OVF packets seen (data-loss points)
        self.overflows = overflows
        #: TIP addresses that matched no known binary block
        self.unresolved = unresolved
        #: PSB resynchronizations performed on corrupt input
        self.resyncs = resyncs
        #: input bytes discarded while resynchronizing past corruption
        self.bytes_skipped = bytes_skipped
        #: PTWRITE payloads, timestamped ((time, cr3, value))
        self.ptwrites: List[tuple] = ptwrites if ptwrites is not None else []

    @classmethod
    def from_records(
        cls,
        records: Sequence[DecodedRecord],
        overflows: int = 0,
        unresolved: int = 0,
        resyncs: int = 0,
        ptwrites: Optional[List[tuple]] = None,
    ) -> "DecodedTrace":
        """Build the SoA form from an object-level record sequence."""
        n = len(records)
        return cls(
            timestamps=np.fromiter((r.timestamp for r in records), np.int64, n),
            cr3s=np.fromiter((r.cr3 for r in records), np.int64, n),
            block_ids=np.fromiter((r.block_id for r in records), np.int64, n),
            function_ids=np.fromiter((r.function_id for r in records), np.int64, n),
            overflows=overflows,
            unresolved=unresolved,
            resyncs=resyncs,
            ptwrites=ptwrites,
        )

    @property
    def records(self) -> List[DecodedRecord]:
        """Object-level compatibility view (built on demand)."""
        return [
            DecodedRecord(t, c, b, f)
            for t, c, b, f in zip(
                self.timestamps.tolist(),
                self.cr3s.tolist(),
                self.block_ids.tolist(),
                self.function_ids.tolist(),
            )
        ]

    def _select(self, column: np.ndarray, cr3: Optional[int]) -> np.ndarray:
        return column if cr3 is None else column[self.cr3s == cr3]

    def block_sequence(self, cr3: Optional[int] = None) -> List[int]:
        """Ordered block ids (optionally restricted to one process)."""
        return self._select(self.block_ids, cr3).tolist()

    def function_histogram(self, cr3: Optional[int] = None) -> Dict[int, int]:
        """function_id -> occurrence count."""
        function_ids = self._select(self.function_ids, cr3)
        unique, counts = np.unique(function_ids, return_counts=True)
        return {int(f): int(c) for f, c in zip(unique, counts)}

    def visit_counts(self, n_blocks: int, cr3: Optional[int] = None) -> np.ndarray:
        """Per-block execution counts over the reconstruction."""
        block_ids = self._select(self.block_ids, cr3)
        counts = np.bincount(block_ids, minlength=n_blocks)
        if counts.size > n_blocks:
            raise IndexError(
                f"block id {int(block_ids.max())} out of range for "
                f"{n_blocks} blocks"
            )
        return counts.astype(np.int64)

    def time_span(self) -> Optional[tuple]:
        """(first, last) record timestamp, or None when empty."""
        if self.timestamps.size == 0:
            return None
        return (int(self.timestamps.min()), int(self.timestamps.max()))

    def __len__(self) -> int:
        return int(self.block_ids.size)

    # -- pool transport (zero-copy handoff of the SoA columns) -------------

    def to_shipped(self):
        """Package the trace for a pool-worker -> parent handoff.

        The four SoA columns travel through shared memory (see
        :mod:`repro.parallel.transport`); the scalar counters and the
        (small) ptwrite list ride in the metadata.
        """
        from repro.parallel.transport import ShippedArrays

        return ShippedArrays(
            {
                "timestamps": self.timestamps,
                "cr3s": self.cr3s,
                "block_ids": self.block_ids,
                "function_ids": self.function_ids,
            },
            meta={
                "overflows": self.overflows,
                "unresolved": self.unresolved,
                "resyncs": self.resyncs,
                "bytes_skipped": self.bytes_skipped,
                "ptwrites": list(self.ptwrites),
            },
        )

    @classmethod
    def from_shipped(cls, shipped) -> "DecodedTrace":
        """Rebuild a trace from a :class:`ShippedArrays` handoff."""
        arrays = shipped.unpack()
        meta = shipped.meta
        return cls(
            timestamps=arrays["timestamps"],
            cr3s=arrays["cr3s"],
            block_ids=arrays["block_ids"],
            function_ids=arrays["function_ids"],
            overflows=int(meta["overflows"]),
            unresolved=int(meta["unresolved"]),
            resyncs=int(meta["resyncs"]),
            ptwrites=[tuple(p) for p in meta["ptwrites"]],
            bytes_skipped=int(meta["bytes_skipped"]),
        )


class SoftwareDecoder:
    """Reconstructs execution flow from packet bytes and binaries.

    ``binaries`` maps CR3 values to program binaries, mirroring how the
    production decoder fetches binaries from the binary repository keyed
    by the traced process (§4).

    ``cache`` (optional) enables the repetition-aware decode cache: the
    stream is split on PSB boundaries and chunks whose bodies were seen
    before — from *any* decoder sharing the cache — skip reconstruction
    entirely (see :mod:`repro.hwtrace.cache`).  Results are byte-identical
    to the uncached path; non-canonical or corrupt streams transparently
    fall back to it.
    """

    def __init__(
        self,
        binaries: Mapping[int, Binary],
        cache: Optional[DecodeCache] = None,
    ):
        self._binaries: Dict[int, Binary] = {}
        self._address_maps: Dict[int, Dict[int, int]] = {}
        # sorted-address tables for vectorized TIP resolution:
        # cr3 -> (sorted addresses, block id per sorted slot, function ids)
        self._tables: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        # cr3 -> content fingerprint of its binary (decode-cache keying)
        self._fingerprints: Dict[int, bytes] = {}
        self.cache = cache
        for cr3, binary in binaries.items():
            self.add_binary(cr3, binary)

    def add_binary(self, cr3: int, binary: Binary) -> None:
        """Register (or replace) the binary mapped at ``cr3``.

        Lets one decoder be reused across tasks as new pods appear:
        extending the mapping costs one address-table build, while the
        tables for already-known processes stay warm.  Replacing a binary
        also replaces the CR3's cache fingerprint, so decode-cache entries
        produced under the old binary can never resolve against the new
        one.
        """
        if self._binaries.get(cr3) is binary:
            return
        self._binaries[cr3] = binary
        self._address_maps[cr3] = {
            block.address: block.block_id for block in binary.blocks
        }
        addresses = binary.block_addresses
        order = np.argsort(addresses)
        self._tables[cr3] = (
            addresses[order],
            order.astype(np.int64),
            binary.block_function_ids,
        )
        self._fingerprints[cr3] = binary_fingerprint(binary)

    @property
    def table_fingerprint(self) -> bytes:
        """Fingerprint of the whole CR3 -> binary mapping (pool keying)."""
        digest = hashlib.blake2b(digest_size=16)
        for cr3 in sorted(self._fingerprints):
            digest.update(int(cr3).to_bytes(8, "little", signed=False))
            digest.update(self._fingerprints[cr3])
        return digest.digest()

    @classmethod
    def for_processes(cls, processes: Iterable[object]) -> "SoftwareDecoder":
        """Build from kernel :class:`Process` objects carrying binaries."""
        mapping = {}
        for process in processes:
            binary = getattr(process, "binary", None)
            if isinstance(binary, Binary):
                mapping[process.cr3] = binary
        return cls(mapping)

    # -- vectorized path (production) --------------------------------------

    def decode(self, data: bytes, resilient: bool = False) -> DecodedTrace:
        """Parse and reconstruct one core's packet stream.

        ``resilient`` enables PSB resynchronization on corrupt input (the
        production decoder's behaviour); strict mode raises on bad
        framing, which is what tests and integrity checks want.  With a
        :class:`DecodeCache` attached, repeated chunk bodies are served
        from the cache (byte-identical results).
        """
        if self.cache is not None:
            return self._decode_cached(data, resilient)
        return self._decode_uncached(data, resilient)

    def _decode_uncached(
        self, data: bytes, resilient: bool, try_canonical: bool = True
    ) -> DecodedTrace:
        if try_canonical:
            fast = self._decode_canonical(data)
            if fast is not None:
                return fast
        if resilient:
            scanned = scan_stream_resilient(data)
        else:
            scanned = scan_stream(data)
        return self._reconstruct(scanned)

    # -- canonical whole-stream fast path -----------------------------------

    def decode_chunk(self, cr3: int, body: bytes) -> ChunkEntry:
        """Decode one canonical chunk *body* against ``cr3``'s binary.

        The streaming-ingest unit of work: ``body`` is everything after a
        chunk's 32-byte ``PSB TSC PIP`` header (trailing OVF stripped),
        exactly as produced by :func:`split_canonical_stream`.  Returns
        the context-free :class:`ChunkEntry` (resolved block/function ids
        plus the unresolved count) — identical to what the whole-stream
        canonical path computes for the same bytes, and served from the
        attached :class:`DecodeCache` when one is present.  The caller is
        responsible for having validated the body's record framing.
        """
        if not body:
            return _EMPTY_ENTRY
        key = (self._fingerprints.get(cr3, UNKNOWN_BINARY_FP), body)
        cache = self.cache
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                return cached
        records = np.frombuffer(body, dtype=np.uint8).reshape(-1, 8)
        addresses = _le6(records[:, 2:8]).astype(np.int64)
        blocks, functions = self._resolve_addresses(cr3, addresses)
        keep = blocks >= 0
        entry = ChunkEntry(
            block_ids=blocks[keep].copy(),
            function_ids=functions[keep].copy(),
            unresolved=int(blocks.size - np.count_nonzero(keep)),
            n_records=int(blocks.size),
        )
        if cache is not None:
            cache.put(key, entry)
        return entry

    def _canonical_records(
        self, data: bytes, plan
    ) -> Optional[Tuple[List[bytes], np.ndarray, np.ndarray]]:
        """Chunk bodies, record matrix, and uint64 record words of a
        canonical plan.

        Joins every chunk's event body (header and trailing OVF stripped)
        and validates all 8-byte records in one vectorized pass — over the
        little-endian *uint64 view* of the record matrix, so the three
        framing checks run on contiguous words instead of strided byte
        columns.  Returns ``None`` when any record is malformed — the
        caller then falls back to the ordinary packet scan, whose error
        semantics are definitive.
        """
        starts = plan.starts.tolist()
        ends = plan.ends.tolist()
        tails = plan.tail_ovf.tolist()
        bodies = [
            data[start + CHUNK_HEADER_BYTES : end - (2 if tail else 0)]
            for start, end, tail in zip(starts, ends, tails)
        ]
        records = np.frombuffer(b"".join(bodies), dtype=np.uint8)
        if records.size % 8:
            return None
        records = records.reshape(-1, 8)
        words = records.view("<u8").ravel()
        if not _valid_record_words(words):
            return None
        return bodies, records, words

    def _decode_canonical(self, data: bytes) -> Optional[DecodedTrace]:
        """Direct bulk decode of a fully canonical stream, skipping the
        per-packet scan *and* the per-packet column reconstruction.

        Canonical streams (everything :func:`encode_trace` emits) need no
        forward-fill: every chunk's timestamp and CR3 sit in its header,
        so the whole stream decodes as one record matrix — bulk address
        extraction, one ``searchsorted`` per distinct CR3, and
        ``np.repeat`` of the header context over each chunk's records.
        Returns ``None`` on any deviation (the scan path then owns the
        stream); results are byte-identical to the scan path by
        construction, since a canonical stream has no resyncs, skipped
        bytes, PTWRITEs, or mid-chunk context switches.
        """
        if not data:
            return None
        buf = np.frombuffer(data, dtype=np.uint8)
        plan = plan_chunks(data, buf, PSB_BYTES)
        if plan is None or not plan.all_canonical:
            return None
        prepared = self._canonical_records(data, plan)
        if prepared is None:
            return None
        bodies, _records, words = prepared
        record_counts = np.fromiter(
            (len(body) >> 3 for body in bodies), np.int64, len(bodies)
        )
        # the 48-bit TIP address occupies the word's high 6 bytes
        addresses = (words >> np.uint64(16)).astype(np.int64)
        record_cr3s = np.repeat(plan.cr3s, record_counts)
        record_times = np.repeat(plan.times, record_counts)
        distinct = sorted(set(plan.cr3s.tolist()))
        if len(distinct) == 1:
            # dominant shape (one traced process per core stream): resolve
            # the whole column without building a selection mask
            block_ids, function_ids = self._resolve_addresses(
                distinct[0], addresses
            )
        else:
            block_ids = np.full(addresses.size, -1, dtype=np.int64)
            function_ids = np.full(addresses.size, -1, dtype=np.int64)
            for cr3 in distinct:
                selected = record_cr3s == cr3
                if not selected.any():
                    continue
                blocks, functions = self._resolve_addresses(
                    cr3, addresses[selected]
                )
                block_ids[selected] = blocks
                function_ids[selected] = functions
        unresolved = int(np.count_nonzero(block_ids < 0))
        if unresolved:
            keep = block_ids >= 0
            record_times = record_times[keep]
            record_cr3s = record_cr3s[keep]
            block_ids = block_ids[keep]
            function_ids = function_ids[keep]
        return DecodedTrace(
            timestamps=record_times,
            cr3s=record_cr3s,
            block_ids=block_ids,
            function_ids=function_ids,
            overflows=int(np.count_nonzero(plan.tail_ovf)),
            unresolved=unresolved,
        )

    def _resolve_addresses(
        self, cr3: int, addresses: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(block_ids, function_ids) for TIP addresses under one CR3.

        Unresolvable addresses (unknown process, empty binary, or no
        block at the address) come back as -1 in both columns.  When
        every address hits — the overwhelmingly common case — the masked
        ``np.where`` blends are skipped entirely.
        """
        table = self._tables.get(cr3)
        if table is None or table[0].size == 0:
            misses = np.full(addresses.size, -1, dtype=np.int64)
            return misses, misses
        sorted_addresses, slot_block_ids, binary_function_ids = table
        slots = np.searchsorted(sorted_addresses, addresses)
        np.minimum(slots, sorted_addresses.size - 1, out=slots)
        hits = sorted_addresses[slots] == addresses
        if hits.all():
            block_ids = slot_block_ids[slots]
            return block_ids, binary_function_ids[block_ids]
        block_ids = np.where(hits, slot_block_ids[slots], -1)
        function_ids = np.where(
            hits, binary_function_ids[np.maximum(block_ids, 0)], -1
        )
        return block_ids, function_ids

    # -- repetition-aware cached path --------------------------------------

    def _decode_cached(self, data: bytes, resilient: bool) -> DecodedTrace:
        """Chunk-level cached decode; falls back on anything non-canonical.

        Only engages when the stream is a pure sequence of canonical
        ``PSB TSC PIP (TNT TIP)* [OVF]`` chunks (everything
        :func:`encode_trace` produces).  Each chunk's result then depends
        only on (its CR3's binary, its body bytes) — the cache key — plus
        the timestamp/CR3 re-based from its own header.  Any deviation
        means context could leak across chunks, so the whole stream is
        decoded by the ordinary scan instead: correctness never rests on
        the cache.
        """
        cache = self.cache
        assert cache is not None
        if not data:
            return DecodedTrace()
        buf = np.frombuffer(data, dtype=np.uint8)
        plan = plan_chunks(data, buf, PSB_BYTES)
        if plan is None or not plan.all_canonical:
            cache.note_fallback()
            return self._decode_uncached(data, resilient, try_canonical=False)

        # content-based validation of every event record in one pass; a
        # cache hit implies its body already validated (same bytes), so
        # this also guards first-time bodies before any entry is built
        prepared = self._canonical_records(data, plan)
        if prepared is None:
            cache.note_fallback()
            return self._decode_uncached(data, resilient, try_canonical=False)
        bodies, records, _words = prepared

        cr3s = plan.cr3s.tolist()
        fingerprints = self._fingerprints
        entries: List[Optional[ChunkEntry]] = []
        miss_indices: List[int] = []
        for index, body in enumerate(bodies):
            if not body:
                entries.append(_EMPTY_ENTRY)
                continue
            key = (
                fingerprints.get(cr3s[index], UNKNOWN_BINARY_FP),
                body,
            )
            entry = cache.get(key)
            entries.append(entry)
            if entry is None:
                miss_indices.append(index)

        if miss_indices:
            self._decode_misses(
                records, bodies, cr3s, entries, miss_indices, cache
            )

        lengths = np.fromiter(
            (entry.block_ids.size for entry in entries),
            np.int64,
            len(entries),
        )
        if int(lengths.sum()) == 0:
            block_ids = _EMPTY_I64
            function_ids = _EMPTY_I64
        else:
            block_ids = np.concatenate([e.block_ids for e in entries])
            function_ids = np.concatenate([e.function_ids for e in entries])
        return DecodedTrace(
            timestamps=np.repeat(plan.times, lengths),
            cr3s=np.repeat(plan.cr3s, lengths),
            block_ids=block_ids,
            function_ids=function_ids,
            overflows=int(np.count_nonzero(plan.tail_ovf)),
            unresolved=sum(entry.unresolved for entry in entries),
        )

    def _decode_misses(
        self,
        records: np.ndarray,
        bodies: List[bytes],
        cr3s: List[int],
        entries: List[Optional[ChunkEntry]],
        miss_indices: List[int],
        cache: DecodeCache,
    ) -> None:
        """Batch-decode the missed chunk bodies and insert cache entries.

        All missed bodies resolve in one vectorized pass per distinct
        CR3 (the same ``searchsorted`` the uncached reconstruction uses),
        then split back per chunk.
        """
        record_counts = np.fromiter(
            (len(body) >> 3 for body in bodies), np.int64, len(bodies)
        )
        record_offsets = np.concatenate(([0], np.cumsum(record_counts)))
        miss_rows = np.concatenate(
            [
                np.arange(record_offsets[i], record_offsets[i + 1])
                for i in miss_indices
            ]
        )
        miss_records = records[miss_rows]
        addresses = _le6(miss_records[:, 2:8]).astype(np.int64)
        miss_counts = record_counts[miss_indices]
        record_cr3s = np.repeat(
            np.fromiter((cr3s[i] for i in miss_indices), np.int64, len(miss_indices)),
            miss_counts,
        )

        resolved_blocks = np.full(addresses.size, -1, dtype=np.int64)
        resolved_functions = np.full(addresses.size, -1, dtype=np.int64)
        for cr3 in sorted(set(record_cr3s.tolist())):
            table = self._tables.get(cr3)
            if table is None:
                continue
            sorted_addresses, slot_block_ids, binary_function_ids = table
            if sorted_addresses.size == 0:
                continue
            selected = record_cr3s == cr3
            wanted = addresses[selected]
            slots = np.searchsorted(sorted_addresses, wanted)
            slots_clipped = np.minimum(slots, sorted_addresses.size - 1)
            hits = sorted_addresses[slots_clipped] == wanted
            blocks = np.where(hits, slot_block_ids[slots_clipped], -1)
            resolved_blocks[selected] = blocks
            resolved_functions[selected] = np.where(
                hits, binary_function_ids[np.maximum(blocks, 0)], -1
            )

        fingerprints = self._fingerprints
        boundaries = np.cumsum(miss_counts)[:-1]
        for index, blocks, functions in zip(
            miss_indices,
            np.split(resolved_blocks, boundaries),
            np.split(resolved_functions, boundaries),
        ):
            keep = blocks >= 0
            entry = ChunkEntry(
                block_ids=blocks[keep].copy(),
                function_ids=functions[keep].copy(),
                unresolved=int(blocks.size - np.count_nonzero(keep)),
                n_records=int(blocks.size),
            )
            entries[index] = entry
            cache.put(
                (fingerprints.get(cr3s[index], UNKNOWN_BINARY_FP), bodies[index]),
                entry,
            )

    def _reconstruct(self, scanned: ScannedStream) -> DecodedTrace:
        """Turn scanned packet columns into a decoded SoA trace."""
        kinds = scanned.kinds
        values = scanned.values
        # TNT packets carry no event-level information below symbolic
        # resolution; drop their rows once so every later pass runs on
        # half the column length
        relevant = kinds != KIND_TNT
        kinds = kinds[relevant]
        values = values[relevant]
        overflows = int(np.count_nonzero(kinds == KIND_OVF))
        tip_mask = kinds == KIND_TIP
        ptw_mask = kinds == KIND_PTW
        if not tip_mask.any() and not ptw_mask.any():
            return DecodedTrace(
                overflows=overflows,
                resyncs=scanned.resyncs,
                bytes_skipped=scanned.bytes_skipped,
            )

        # forward-fill decode context over the packet sequence: each
        # packet sees the value of the last TSC / PIP at or before it
        pip_mask = kinds == KIND_PIP
        times = _forward_fill(kinds == KIND_TSC, values)
        cr3s = _forward_fill(pip_mask, values)

        ptwrites = [
            (int(t), int(c), int(v))
            for t, c, v in zip(
                times[ptw_mask], cr3s[ptw_mask], values[ptw_mask]
            )
        ]

        addresses = values[tip_mask].astype(np.int64)
        tip_times = times[tip_mask]
        tip_cr3s = cr3s[tip_mask]
        block_ids = np.full(addresses.size, -1, dtype=np.int64)
        function_ids = np.full(addresses.size, -1, dtype=np.int64)
        # candidate contexts come from the (few) PIP packets, not from a
        # sort over the per-record cr3 column; 0 is the pre-PIP default
        candidates = set(np.unique(values[pip_mask]).tolist())
        candidates.add(0)
        for cr3 in sorted(candidates):
            table = self._tables.get(cr3)
            if table is None:
                continue  # unknown process: every TIP stays unresolved
            selected = tip_cr3s == cr3
            if not selected.any():
                continue
            sorted_addresses, slot_block_ids, binary_function_ids = table
            if sorted_addresses.size == 0:
                continue
            wanted = addresses[selected]
            slots = np.searchsorted(sorted_addresses, wanted)
            slots_clipped = np.minimum(slots, sorted_addresses.size - 1)
            hits = sorted_addresses[slots_clipped] == wanted
            resolved = np.where(hits, slot_block_ids[slots_clipped], -1)
            block_ids[selected] = resolved
            function_ids[selected] = np.where(
                hits, binary_function_ids[np.maximum(resolved, 0)], -1
            )
        keep = block_ids >= 0
        unresolved = int(addresses.size - np.count_nonzero(keep))
        return DecodedTrace(
            timestamps=tip_times[keep],
            cr3s=tip_cr3s[keep],
            block_ids=block_ids[keep],
            function_ids=function_ids[keep],
            overflows=overflows,
            unresolved=unresolved,
            resyncs=scanned.resyncs,
            ptwrites=ptwrites,
            bytes_skipped=scanned.bytes_skipped,
        )

    def decode_many(
        self,
        streams: Iterable[bytes],
        resilient: bool = False,
        max_workers: Optional[int] = None,
        pool=None,
    ) -> DecodedTrace:
        """Decode several per-core streams and merge by timestamp.

        Streams decode concurrently (chunked one-per-stream across a
        thread pool — the columnar scan spends its time in numpy, which
        releases the GIL) and the merge is a single stable ``argsort``
        over the concatenated timestamp column.  All fields merge:
        records, overflows, unresolved, resyncs, and ptwrites (also
        timestamp-ordered); ``resilient`` applies to every stream.

        ``pool`` (a :class:`repro.parallel.RunPool`) fans the per-stream
        decode out across *processes* instead: workers rebuild this
        decoder from the pickled binary mapping (memoized per mapping
        fingerprint), decode against their process-wide decode cache when
        this decoder carries one, and hand the SoA columns back through
        shared memory (:mod:`repro.parallel.transport`) rather than the
        result pipe.  The merged result is identical either way.
        """
        streams = list(streams)
        if pool is not None and pool.parallel and len(streams) > 1:
            payloads = [
                (self._binaries, stream, resilient, self.cache is not None)
                for stream in streams
            ]
            decoded = [
                DecodedTrace.from_shipped(shipped)
                for shipped in pool.map(_pool_decode_stream, payloads)
            ]
        elif len(streams) <= 1:
            decoded = [self.decode(s, resilient=resilient) for s in streams]
        else:
            workers = max_workers or min(len(streams), 8)
            with ThreadPoolExecutor(max_workers=workers) as thread_pool:
                decoded = list(
                    thread_pool.map(
                        lambda s: self.decode(s, resilient=resilient), streams
                    )
                )
        if not decoded:
            return DecodedTrace()
        timestamps = np.concatenate([d.timestamps for d in decoded])
        order = np.argsort(timestamps, kind="stable")
        merged = DecodedTrace(
            timestamps=timestamps[order],
            cr3s=np.concatenate([d.cr3s for d in decoded])[order],
            block_ids=np.concatenate([d.block_ids for d in decoded])[order],
            function_ids=np.concatenate([d.function_ids for d in decoded])[order],
            overflows=sum(d.overflows for d in decoded),
            unresolved=sum(d.unresolved for d in decoded),
            resyncs=sum(d.resyncs for d in decoded),
            bytes_skipped=sum(d.bytes_skipped for d in decoded),
            ptwrites=sorted(
                (p for d in decoded for p in d.ptwrites), key=lambda p: p[0]
            ),
        )
        return merged

    # -- object-level reference path ---------------------------------------

    def decode_objects(self, data: bytes, resilient: bool = False) -> DecodedTrace:
        """Reference decode via per-packet objects (the pre-columnar path).

        Semantically identical to :meth:`decode` — kept as the golden
        reference the equality tests and the codec benchmark compare the
        vectorized path against.
        """
        records: List[DecodedRecord] = []
        ptwrites: List[tuple] = []
        overflows = 0
        unresolved = 0
        current_time = 0
        current_cr3 = 0
        address_map: Optional[Dict[int, int]] = None
        binary: Optional[Binary] = None
        if resilient:
            packets, resyncs = parse_stream_resilient(data)
        else:
            packets = parse_stream(data)
            resyncs = 0
        for packet in packets:
            if isinstance(packet, TscPacket):
                current_time = packet.timestamp
            elif isinstance(packet, PipPacket):
                current_cr3 = packet.cr3
                binary = self._binaries.get(current_cr3)
                address_map = self._address_maps.get(current_cr3)
            elif isinstance(packet, TipPacket):
                if address_map is None or binary is None:
                    unresolved += 1
                    continue
                block_id = address_map.get(packet.address)
                if block_id is None:
                    unresolved += 1
                    continue
                records.append(
                    DecodedRecord(
                        timestamp=current_time,
                        cr3=current_cr3,
                        block_id=block_id,
                        function_id=binary.blocks[block_id].function_id,
                    )
                )
            elif isinstance(packet, OvfPacket):
                overflows += 1
            elif isinstance(packet, PtwPacket):
                ptwrites.append((current_time, current_cr3, packet.value))
            # PSB and TNT packets carry no event-level information here:
            # PSB is sync, TNT intra-event detail below symbolic resolution
        return DecodedTrace.from_records(
            records,
            overflows=overflows,
            unresolved=unresolved,
            resyncs=resyncs,
            ptwrites=ptwrites,
        )


def encode_trace_objects(segments: Sequence[TraceSegment]) -> bytes:
    """Reference encoder via per-packet objects (the pre-columnar path).

    Byte-identical to :func:`encode_trace`; kept for golden-equality
    tests and the codec benchmark.
    """
    packets: List[object] = []
    for segment in segments:
        packets.append(PsbPacket())
        packets.append(TscPacket(segment.t_start))
        packets.append(PipPacket(segment.cr3))
        blocks = segment.path_model.binary.blocks
        for block_id in segment.captured_block_ids().tolist():
            bits = tuple(bool((block_id >> k) & 1) for k in range(4))
            packets.append(TntPacket(bits))
            packets.append(TipPacket(blocks[block_id].address))
        if segment.truncated:
            packets.append(OvfPacket())
    return encode_packets(packets)  # type: ignore[arg-type]


#: worker-side decoder memo for decode_many's process fan-out, keyed by
#: the binary-mapping fingerprint (rebuilt tables survive across items)
_POOL_DECODERS: Dict[bytes, "SoftwareDecoder"] = {}


def _pool_decode_stream(payload) -> object:
    """Decode one stream in a pool worker; returns shipped SoA columns.

    ``payload`` is ``(binaries, stream, resilient, use_cache)``.  The
    decoder for a given binary mapping is built once per worker;
    ``use_cache`` attaches the worker's process-wide decode cache so
    repeated chunk bodies amortize across items and calls.
    """
    binaries, stream, resilient, use_cache = payload
    probe = SoftwareDecoder(binaries)
    key = probe.table_fingerprint
    decoder = _POOL_DECODERS.get(key)
    if decoder is None:
        decoder = probe
        _POOL_DECODERS[key] = decoder
    decoder.cache = process_decode_cache() if use_cache else None
    return decoder.decode(stream, resilient=resilient).to_shipped()


def _forward_fill(mask: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per-position value of the last ``mask`` slot at or before it (0 start)."""
    n = mask.size
    indices = np.where(mask, np.arange(n), -1)
    np.maximum.accumulate(indices, out=indices)
    filled = values[np.maximum(indices, 0)].astype(np.int64)
    filled[indices < 0] = 0
    return filled
