"""Vectorized columnar trace codec.

The object-level API in :mod:`repro.hwtrace.packets` materializes one
frozen dataclass per packet — faithful, but far too slow for the volumes
the hardware emits (a 10 MB stream is ~1.3 million packets).  This module
is the throughput path: it scans the same byte format with numpy and
produces a **structure-of-arrays** view of the stream instead of objects.

The scanner exploits the stream's dominant regularity: the encoder emits
each captured event as a fixed 8-byte ``TNT TIP`` record (1-byte TNT,
1-byte TIP header, 6-byte address), so between the rare header packets
(PSB/TSC/PIP) the stream is a long run of aligned records.  The scan loop
therefore advances packet-by-packet only over the rare packets; whenever
it lands on a TNT it validates the longest run of well-formed 8-byte
records in one vectorized mask check and consumes the whole run at once.
Python-level iterations are O(#segments + #irregular packets), not
O(#packets).

Error semantics are byte-for-byte identical to the object parser: the
strict scan raises :class:`~repro.hwtrace.packets.PacketError` with the
same message and structured ``offset`` at the same byte position, and the
resilient scan performs the same PSB resynchronization and returns the
same packet sequence and resync count (proved by the golden tests in
``tests/test_hwtrace_codec.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.hwtrace.packets import (
    PSB_BYTES,
    OvfPacket,
    Packet,
    PacketError,
    PipPacket,
    PsbPacket,
    PtwPacket,
    TipPacket,
    TscPacket,
    _parse_tnt,
)

#: packet-kind codes used in the columnar representation
KIND_PSB = 0
KIND_OVF = 1
KIND_PIP = 2
KIND_TSC = 3
KIND_TIP = 4
KIND_TNT = 5
KIND_PTW = 6

_EXT_PREFIX = 0x02
_EXT_PSB = 0x82
_EXT_OVF = 0xF3
_EXT_PIP = 0x43
_EXT_PTW = 0x12
_TSC_HEADER = 0x19
_TIP_HEADER = 0x0D

_EMPTY_KINDS = np.empty(0, dtype=np.uint8)
_EMPTY_VALUES = np.empty(0, dtype=np.uint64)

#: initial / maximum event records validated per vectorized chunk on the
#: run fast path; the chunk grows geometrically so overscan past the end
#: of a run stays proportional to the run's own length
_RUN_CHUNK_MIN = 1 << 9
_RUN_CHUNK_MAX = 1 << 16


@dataclass
class ScannedStream:
    """Columnar scan of a packet stream: one row per packet, in order.

    ``kinds`` holds a ``KIND_*`` code per packet; ``values`` the payload
    (PIP: CR3, TSC: timestamp, TIP: address, PTW: value, TNT: the raw
    byte; PSB/OVF: 0).  This is the input the vectorized decoder
    forward-fills context over — no per-packet objects exist anywhere on
    the path.
    """

    kinds: np.ndarray = field(default_factory=lambda: _EMPTY_KINDS)
    values: np.ndarray = field(default_factory=lambda: _EMPTY_VALUES)
    #: PSB resynchronizations performed (resilient scans only)
    resyncs: int = 0
    #: bytes discarded while skipping from corruption to the next PSB
    bytes_skipped: int = 0

    def __len__(self) -> int:
        return int(self.kinds.size)

    def to_packets(self) -> List[Packet]:
        """Materialize the object-level packet list (compatibility view).

        Equal to what :func:`repro.hwtrace.packets.parse_stream` (or the
        resilient variant) returns on the same bytes — used by the golden
        tests and anything that still wants objects.
        """
        out: List[Packet] = []
        for kind, value in zip(self.kinds.tolist(), self.values.tolist()):
            if kind == KIND_TIP:
                out.append(TipPacket(value))
            elif kind == KIND_TNT:
                out.append(_parse_tnt(value))
            elif kind == KIND_TSC:
                out.append(TscPacket(value))
            elif kind == KIND_PIP:
                out.append(PipPacket(value))
            elif kind == KIND_PSB:
                out.append(PsbPacket())
            elif kind == KIND_OVF:
                out.append(OvfPacket())
            else:
                out.append(PtwPacket(value))
        return out


def _le6(mat: np.ndarray) -> np.ndarray:
    """Little-endian uint64 values from an (n, 6) uint8 byte matrix."""
    padded = np.zeros((mat.shape[0], 8), dtype=np.uint8)
    padded[:, :6] = mat
    return padded.view("<u8").ravel()


def _scan(
    data: bytes, start: int, buf: np.ndarray
) -> Tuple[List[np.ndarray], List[np.ndarray], Optional[Tuple[int, str]]]:
    """Scan from ``start``; returns (kind_chunks, value_chunks, error).

    ``error`` is ``None`` on a clean scan, else ``(offset, message)`` for
    the first malformed packet — chunks cover everything before it.
    """
    kind_chunks: List[np.ndarray] = []
    value_chunks: List[np.ndarray] = []
    pending_kinds: List[int] = []
    pending_values: List[int] = []

    def flush() -> None:
        if pending_kinds:
            kind_chunks.append(np.array(pending_kinds, dtype=np.uint8))
            value_chunks.append(np.array(pending_values, dtype=np.uint64))
            pending_kinds.clear()
            pending_values.clear()

    i = start
    n = len(data)
    error: Optional[Tuple[int, str]] = None
    while i < n:
        b0 = data[i]
        if b0 == _EXT_PREFIX:
            if i + 1 >= n:
                error = (i, f"truncated extended packet at offset {i}")
                break
            b1 = data[i + 1]
            if b1 == _EXT_PSB:
                if data[i : i + 16] != PSB_BYTES:
                    error = (i, f"corrupt PSB at offset {i}")
                    break
                pending_kinds.append(KIND_PSB)
                pending_values.append(0)
                i += 16
            elif b1 == _EXT_OVF:
                pending_kinds.append(KIND_OVF)
                pending_values.append(0)
                i += 2
            elif b1 == _EXT_PIP:
                if i + 8 > n:
                    error = (i, f"truncated PIP at offset {i}")
                    break
                pending_kinds.append(KIND_PIP)
                pending_values.append(int.from_bytes(data[i + 2 : i + 8], "little"))
                i += 8
            elif b1 == _EXT_PTW:
                if i + 10 > n:
                    error = (i, f"truncated PTWRITE at offset {i}")
                    break
                pending_kinds.append(KIND_PTW)
                pending_values.append(int.from_bytes(data[i + 2 : i + 10], "little"))
                i += 10
            else:
                error = (i, f"unknown extended opcode {b1:#04x} at offset {i}")
                break
        elif b0 == _TSC_HEADER:
            if i + 8 > n:
                error = (i, f"truncated TSC at offset {i}")
                break
            pending_kinds.append(KIND_TSC)
            pending_values.append(int.from_bytes(data[i + 1 : i + 8], "little"))
            i += 8
        elif (b0 & 0x01) == 0 and b0 != 0:
            # TNT.  Hot path: consume the longest run of well-formed
            # 8-byte (TNT, TIP) event records, validated in bounded
            # vectorized chunks (so a run stopping early — e.g. at the
            # next segment's PSB — never rescans the whole remainder).
            whole_records = (n - i) // 8
            run = 0
            chunk = _RUN_CHUNK_MIN
            while run < whole_records:
                upper = min(run + chunk, whole_records)
                chunk = min(chunk * 2, _RUN_CHUNK_MAX)
                view = buf[i + run * 8 : i + upper * 8].reshape(upper - run, 8)
                valid = (
                    ((view[:, 0] & 0x01) == 0)
                    & (view[:, 0] >= 4)
                    & (view[:, 1] == _TIP_HEADER)
                )
                if valid.all():
                    run = upper
                    continue
                run += int(np.argmin(valid))
                break
            if run:
                flush()
                records = buf[i : i + run * 8].reshape(run, 8)
                kinds = np.empty(2 * run, dtype=np.uint8)
                kinds[0::2] = KIND_TNT
                kinds[1::2] = KIND_TIP
                values = np.empty(2 * run, dtype=np.uint64)
                values[0::2] = records[:, 0]
                values[1::2] = _le6(records[:, 2:8])
                kind_chunks.append(kinds)
                value_chunks.append(values)
                i += run * 8
            else:
                # standalone TNT (whatever follows is not a TIP record);
                # bytes >= 4 with bit0 clear are always valid TNT framing
                pending_kinds.append(KIND_TNT)
                pending_values.append(b0)
                i += 1
        elif b0 == _TIP_HEADER:
            if i + 7 > n:
                error = (i, f"truncated TIP at offset {i}")
                break
            pending_kinds.append(KIND_TIP)
            pending_values.append(int.from_bytes(data[i + 1 : i + 7], "little"))
            i += 7
        else:
            error = (i, f"unrecognized packet header {b0:#04x} at offset {i}")
            break
    flush()
    return kind_chunks, value_chunks, error


def _assemble(
    kind_chunks: List[np.ndarray],
    value_chunks: List[np.ndarray],
    resyncs: int,
    bytes_skipped: int = 0,
) -> ScannedStream:
    if not kind_chunks:
        return ScannedStream(resyncs=resyncs, bytes_skipped=bytes_skipped)
    return ScannedStream(
        kinds=np.concatenate(kind_chunks),
        values=np.concatenate(value_chunks),
        resyncs=resyncs,
        bytes_skipped=bytes_skipped,
    )


def scan_stream(data: bytes) -> ScannedStream:
    """Strict columnar scan; raises :class:`PacketError` on bad framing."""
    buf = np.frombuffer(data, dtype=np.uint8)
    kind_chunks, value_chunks, error = _scan(data, 0, buf)
    if error is not None:
        raise PacketError(error[1], error[0])
    return _assemble(kind_chunks, value_chunks, 0)


def scan_stream_resilient(data: bytes) -> ScannedStream:
    """Columnar scan with PSB resynchronization on corruption.

    Mirrors :func:`repro.hwtrace.packets.parse_stream_resilient`: on a
    framing error it keeps everything scanned so far, skips to the next
    PSB, and resumes; ``resyncs`` counts the recoveries.
    """
    buf = np.frombuffer(data, dtype=np.uint8)
    kind_chunks: List[np.ndarray] = []
    value_chunks: List[np.ndarray] = []
    resyncs = 0
    bytes_skipped = 0
    offset = 0
    while offset < len(data):
        chunk_kinds, chunk_values, error = _scan(data, offset, buf)
        kind_chunks.extend(chunk_kinds)
        value_chunks.extend(chunk_values)
        if error is None:
            break
        resyncs += 1
        next_psb = data.find(PSB_BYTES, error[0] + 1)
        if next_psb == -1:
            bytes_skipped += len(data) - error[0]
            break
        bytes_skipped += next_psb - error[0]
        offset = next_psb
    return _assemble(kind_chunks, value_chunks, resyncs, bytes_skipped)


def encode_event_records(block_ids: np.ndarray, addresses: np.ndarray) -> bytes:
    """Serialize events as packed ``TNT TIP`` 8-byte records, vectorized.

    Byte-identical to encoding one :class:`TntPacket` (4 representative
    bits from the low block-id nibble) plus one :class:`TipPacket` per
    event with the object API, without creating any packet objects.
    """
    n_events = int(block_ids.size)
    if n_events == 0:
        return b""
    addr = np.ascontiguousarray(addresses, dtype=np.int64)
    if int(addr.min()) < 0 or int(addr.max()) >= (1 << 48):
        bad = addr[(addr < 0) | (addr >= (1 << 48))][0]
        raise PacketError(f"address {int(bad):#x} out of 48-bit range")
    records = np.empty((n_events, 8), dtype=np.uint8)
    # TNT byte: payload bits 1..4 from the block id's low nibble, stop
    # marker at bit 5, bit 0 clear — exactly TntPacket(bits).encode()
    records[:, 0] = ((block_ids & 0xF) << 1) | 0x20
    records[:, 1] = _TIP_HEADER
    unsigned = addr.astype(np.uint64)
    for byte_index in range(6):
        records[:, 2 + byte_index] = (
            (unsigned >> np.uint64(8 * byte_index)) & np.uint64(0xFF)
        ).astype(np.uint8)
    return records.tobytes()
