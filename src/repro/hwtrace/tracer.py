"""Per-core hardware tracer.

One :class:`CoreTracer` sits on each logical core (installed by the
tracing facility).  While its MSR file has TraceEn set, every execution
slice the scheduler delivers is considered for capture: the CR3 filter
drops non-matching processes in hardware (no software cost — this is how
EXIST avoids schedule-out control operations, §3.3), matching slices are
measured through the :class:`VolumeModel` and written to the ToPA output,
truncating the captured symbolic-event range when the buffer fills.

The tracer never calls back into the scheduler; cost charging for control
operations happens in the controlling scheme via the MSR file's ledger.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.hwtrace.cost import CostLedger
from repro.hwtrace.msr import CtlBits, RtitMsrFile
from repro.hwtrace.topa import ToPAOutput
from repro.program.path import PathModel


@dataclass(frozen=True)
class VolumeModel:
    """Real-scale trace volume per retired branch.

    Conditional branches cost one TNT bit (~1/6 byte); indirect branches
    cost one compressed TIP packet (~3 bytes on average with IP
    compression).  PSBs every 4 KiB add a small sync overhead, and each
    captured slice restarts the stream with a PSB+TSC+PIP header.
    """

    tnt_bytes_per_branch: float = 1.0 / 6.0
    tip_bytes: float = 3.0
    psb_interval_bytes: int = 4096
    segment_header_bytes: int = 32

    def slice_bytes(self, branches: int, indirect_fraction: float) -> float:
        """Real-scale trace bytes one slice of ``branches`` produces."""
        if branches <= 0:
            return float(self.segment_header_bytes)
        payload = branches * (
            (1.0 - indirect_fraction) * self.tnt_bytes_per_branch
            + indirect_fraction * self.tip_bytes
        )
        sync = payload / self.psb_interval_bytes * 16.0
        return payload + sync + self.segment_header_bytes

    def bytes_per_second(
        self, branch_per_instr: float, nominal_ips: float, indirect_fraction: float
    ) -> float:
        """Steady-state trace bandwidth of a workload (bytes/s)."""
        branches_per_s = branch_per_instr * nominal_ips * 1e9
        return branches_per_s * (
            (1.0 - indirect_fraction) * self.tnt_bytes_per_branch
            + indirect_fraction * self.tip_bytes
        )


@dataclass
class TraceSegment:
    """One captured (possibly truncated) execution slice."""

    core_id: int
    pid: int
    tid: int
    cr3: int
    t_start: int
    t_end: int
    #: symbolic events the thread executed during the slice
    event_start: int
    event_end: int
    #: events actually retained after buffer truncation
    captured_event_end: int
    bytes_offered: float
    bytes_accepted: float
    path_model: PathModel

    @property
    def truncated(self) -> bool:
        return self.captured_event_end < self.event_end

    @property
    def captured_events(self) -> int:
        return self.captured_event_end - self.event_start

    def captured_block_ids(self) -> np.ndarray:
        """Block ids of the events this segment actually retained.

        The columnar encoder consumes this directly (one array per
        segment) instead of iterating events one by one.
        """
        return self.path_model.events(self.event_start, self.captured_event_end)


class CoreTracer:
    """The hardware tracing engine of one logical core."""

    def __init__(
        self,
        core_id: int,
        ledger: CostLedger,
        volume: Optional[VolumeModel] = None,
        hot_switching: bool = False,
    ):
        self.core_id = core_id
        self.msr = RtitMsrFile(core_id, ledger, hot_switching=hot_switching)
        self.volume = volume or VolumeModel()
        self.output: Optional[ToPAOutput] = None
        self.segments: List[TraceSegment] = []
        #: slices dropped by the CR3 filter (hardware-side, zero cost)
        self.filtered_slices = 0
        #: slices dropped because the buffer was already stopped
        self.overflow_slices = 0

    # -- configuration (driver-side; costs charged through the MSR file) ------

    def attach_output(self, output: ToPAOutput) -> None:
        """Point the tracer at a ToPA table (requires tracing disabled)."""
        self.output = output
        self.msr.write(0x560, output.entries[0].base)  # RTIT_OUTPUT_BASE

    @property
    def enabled(self) -> bool:
        return self.msr.trace_enabled

    @property
    def cr3_filtering(self) -> bool:
        return bool(self.msr.ctl & CtlBits.CR3_FILTER)

    # -- capture path (hardware-side; free of software cost) -------------------

    def observe_slice(
        self,
        pid: int,
        tid: int,
        cr3: int,
        t_start: int,
        t_end: int,
        event_start: int,
        event_end: int,
        branches: int,
        path_model: PathModel,
    ) -> Optional[TraceSegment]:
        """Consider one executed slice for capture.

        Returns the stored segment, or ``None`` if the slice was filtered
        or entirely lost to overflow.
        """
        if not self.enabled:
            return None
        if self.cr3_filtering and self.msr.cr3_match not in (0, cr3):
            self.filtered_slices += 1
            return None
        if self.output is None:
            raise RuntimeError(f"tracer {self.core_id} enabled without output")

        offered = float(
            math.ceil(self.volume.slice_bytes(branches, path_model.indirect_fraction))
        )
        accepted = self.output.write(offered)
        n_events = event_end - event_start
        if accepted <= 0:
            self.overflow_slices += 1
            return None
        if accepted >= offered:
            captured_end = event_end
        else:
            fraction = accepted / offered
            captured_end = event_start + int(n_events * fraction)
        segment = TraceSegment(
            core_id=self.core_id,
            pid=pid,
            tid=tid,
            cr3=cr3,
            t_start=t_start,
            t_end=t_end,
            event_start=event_start,
            event_end=event_end,
            captured_event_end=captured_end,
            bytes_offered=offered,
            bytes_accepted=accepted,
            path_model=path_model,
        )
        self.segments.append(segment)
        return segment

    # -- lifecycle ----------------------------------------------------------------

    def take_segments(self) -> List[TraceSegment]:
        """Remove and return all captured segments (trace dump)."""
        segments, self.segments = self.segments, []
        return segments

    def reset(self) -> None:
        """Clear capture state for a new tracing period."""
        self.segments.clear()
        self.filtered_slices = 0
        self.overflow_slices = 0
        if self.output is not None:
            self.output.reset()

    @property
    def bytes_captured(self) -> float:
        return sum(s.bytes_accepted for s in self.segments)
