"""RISC-V Processor Trace (E-Trace) backend.

Completes the paper's §6.2 platform list (IPT, ARM ETM, RISC-V).  The
RISC-V Efficient Trace spec differs from both x86 and ARM in ways this
model keeps:

* the trace encoder is controlled through memory-mapped ``trTeControl``
  registers with an active/enable two-step (no MSRs, no OS lock);
* branch outcomes are batched into *branch-map* packets of up to 31
  branches, denser than IPT's 6-per-byte TNT but with larger sync
  (``te_inst`` format 3) packets carrying the full address and context;
* filtering is by context (``trTeContext``) like ETM, not CR3.

Like :class:`~repro.hwtrace.etm.EtmCoreTracer`, drop-in compatible with
the facility: EXIST's control structure is untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hwtrace.cost import CostLedger
from repro.hwtrace.topa import ToPAOutput
from repro.hwtrace.tracer import TraceSegment, VolumeModel
from repro.program.path import PathModel

# memory-mapped trace-encoder registers (RISC-V E-Trace / Sifive-style)
TR_TE_CONTROL = 0x000  # bit0 teActive, bit1 teEnable
TR_TE_IMPL = 0x004
TR_TE_CONTEXT = 0x010  # context filter (ASID/process)


class TeControlError(RuntimeError):
    """Raised on illegal encoder programming sequences."""


@dataclass(frozen=True)
class RiscvVolumeModel(VolumeModel):
    """Branch-map packets: up to 31 branches per ~5-byte packet."""

    tnt_bytes_per_branch: float = 5.0 / 31.0
    tip_bytes: float = 2.5  # differential address (format 1/2) packets
    segment_header_bytes: int = 24  # format-3 sync packet


class RiscvTeRegisterFile:
    """The encoder's control registers with the active/enable protocol.

    ``teActive`` powers the encoder; ``teEnable`` starts tracing.
    Reprogramming context/filters requires ``teEnable = 0`` (tracing
    stopped) but may keep ``teActive`` set — a middle ground between
    IPT's disable-everything and ETM's lock dance.
    """

    MMIO_WRITE_NS = 250

    def __init__(self, core_id: int, ledger: CostLedger):
        self.core_id = core_id
        self._ledger = ledger
        self._regs: Dict[int, int] = {
            TR_TE_CONTROL: 0, TR_TE_IMPL: 0x1, TR_TE_CONTEXT: 0
        }
        self.write_count = 0

    @property
    def active(self) -> bool:
        return bool(self._regs[TR_TE_CONTROL] & 1)

    @property
    def trace_enabled(self) -> bool:
        return bool(self._regs[TR_TE_CONTROL] & 2)

    @property
    def cr3_match(self) -> int:
        """Context filter (facility-facing name kept for compatibility)."""
        return self._regs[TR_TE_CONTEXT]

    def write(self, offset: int, value: int) -> None:
        """MMIO register write, enforcing the teEnable rule."""
        if offset not in self._regs:
            raise ValueError(f"unknown te register {offset:#x}")
        if offset == TR_TE_CONTEXT and self.trace_enabled:
            raise TeControlError("trTeContext write requires teEnable=0")
        self._ledger.charge("te_mmio", self.MMIO_WRITE_NS)
        self._regs[offset] = value
        self.write_count += 1

    def configure(
        self,
        flags: object = None,
        cr3_match: Optional[int] = None,
        output_base: Optional[int] = None,
    ) -> None:
        """CoreTracer-compatible configuration entry point."""
        if self.trace_enabled:
            raise TeControlError("configure requires teEnable=0")
        self.write(TR_TE_CONTROL, 1)  # teActive
        if cr3_match is not None:
            self.write(TR_TE_CONTEXT, cr3_match)

    def enable(self) -> None:
        """Start tracing (teEnable); requires teActive."""
        if not self.active:
            raise TeControlError("teEnable requires teActive")
        self._ledger.charge("te_mmio", self.MMIO_WRITE_NS)
        self._regs[TR_TE_CONTROL] |= 2
        self.write_count += 1

    def disable(self) -> None:
        """Stop tracing; free when already stopped."""
        if not self.trace_enabled:
            return
        self._ledger.charge("te_mmio", self.MMIO_WRITE_NS)
        self._regs[TR_TE_CONTROL] &= ~2
        self.write_count += 1


class RiscvCoreTracer:
    """Per-hart trace encoder, drop-in for :class:`CoreTracer`."""

    def __init__(
        self,
        core_id: int,
        ledger: CostLedger,
        volume: Optional[VolumeModel] = None,
        hot_switching: bool = False,
    ):
        self.core_id = core_id
        self.msr = RiscvTeRegisterFile(core_id, ledger)
        self.volume = volume or RiscvVolumeModel()
        self.output: Optional[ToPAOutput] = None
        self.segments: List[TraceSegment] = []
        self.filtered_slices = 0
        self.overflow_slices = 0

    def attach_output(self, output: ToPAOutput) -> None:
        """Point the encoder at its trace sink buffer."""
        if self.msr.trace_enabled:
            raise TeControlError("sink reprogramming requires teEnable=0")
        self.output = output

    @property
    def enabled(self) -> bool:
        return self.msr.trace_enabled

    @property
    def cr3_filtering(self) -> bool:
        return self.msr.cr3_match != 0

    def observe_slice(
        self, pid: int, tid: int, cr3: int, t_start: int, t_end: int,
        event_start: int, event_end: int, branches: int, path_model: PathModel,
    ) -> Optional[TraceSegment]:
        """Consider one slice for capture (same contract as CoreTracer)."""
        if not self.enabled:
            return None
        if self.cr3_filtering and self.msr.cr3_match not in (0, cr3):
            self.filtered_slices += 1
            return None
        if self.output is None:
            raise RuntimeError(f"encoder {self.core_id} enabled without sink")
        offered = float(math.ceil(
            self.volume.slice_bytes(branches, path_model.indirect_fraction)
        ))
        accepted = self.output.write(offered)
        n_events = event_end - event_start
        if accepted <= 0:
            self.overflow_slices += 1
            return None
        captured_end = (
            event_end if accepted >= offered
            else event_start + int(n_events * (accepted / offered))
        )
        segment = TraceSegment(
            core_id=self.core_id, pid=pid, tid=tid, cr3=cr3,
            t_start=t_start, t_end=t_end,
            event_start=event_start, event_end=event_end,
            captured_event_end=captured_end,
            bytes_offered=offered, bytes_accepted=accepted,
            path_model=path_model,
        )
        self.segments.append(segment)
        return segment

    def take_segments(self) -> List[TraceSegment]:
        """Remove and return all captured segments (trace dump)."""
        segments, self.segments = self.segments, []
        return segments

    def reset(self) -> None:
        """Clear capture state for a new tracing period."""
        self.segments.clear()
        self.filtered_slices = 0
        self.overflow_slices = 0
        if self.output is not None:
            self.output.reset()

    @property
    def bytes_captured(self) -> float:
        return sum(s.bytes_accepted for s in self.segments)
