"""Simulated hardware-tracing substrate (Intel Processor Trace model).

The paper builds on real IPT: per-core tracers configured through RTIT
MSRs, emitting TNT/TIP/TSC/PIP packets into ToPA-described memory
buffers, decoded offline by libipt against the program binary.  This
package models each piece:

* :mod:`repro.hwtrace.cost` — the control-operation cost model (WRMSR,
  mode switches, PMIs, buffer draining) whose operation *counts* are what
  EXIST optimizes;
* :mod:`repro.hwtrace.msr` — the RTIT register file, enforcing the
  hardware rule that configuration changes require tracing disabled
  (the root cause of per-context-switch control cost, §2.3);
* :mod:`repro.hwtrace.packets` — binary packet encode/parse (objects);
* :mod:`repro.hwtrace.codec` — the vectorized columnar scanner the
  throughput path runs on (no per-packet objects);
* :mod:`repro.hwtrace.topa` — Table-of-Physical-Addresses output buffers
  with stop-on-full (compulsory) and ring semantics;
* :mod:`repro.hwtrace.tracer` — the per-core tracer consuming execution
  slices from the scheduler;
* :mod:`repro.hwtrace.decoder` — the software decoder reconstructing
  control flow from dumped packets plus the binary.
"""

from repro.hwtrace.cost import CostModel, CostLedger
from repro.hwtrace.msr import (
    RTIT_CTL,
    RTIT_STATUS,
    RTIT_OUTPUT_BASE,
    RTIT_OUTPUT_MASK_PTRS,
    RTIT_CR3_MATCH,
    CtlBits,
    RtitMsrFile,
    TraceEnabledError,
)
from repro.hwtrace.packets import (
    Packet,
    PsbPacket,
    TscPacket,
    PipPacket,
    TipPacket,
    TntPacket,
    OvfPacket,
    encode_packets,
    parse_stream,
)
from repro.hwtrace.codec import (
    ScannedStream,
    scan_stream,
    scan_stream_resilient,
)
from repro.hwtrace.cache import (
    DecodeCache,
    binary_fingerprint,
    process_decode_cache,
)
from repro.hwtrace.topa import ToPAEntry, ToPAOutput, OutputMode
from repro.hwtrace.tracer import CoreTracer, TraceSegment, VolumeModel
from repro.hwtrace.decoder import (
    SoftwareDecoder,
    DecodedTrace,
    DecodedRecord,
    encode_trace,
)

__all__ = [
    "CostModel",
    "CostLedger",
    "RTIT_CTL",
    "RTIT_STATUS",
    "RTIT_OUTPUT_BASE",
    "RTIT_OUTPUT_MASK_PTRS",
    "RTIT_CR3_MATCH",
    "CtlBits",
    "RtitMsrFile",
    "TraceEnabledError",
    "Packet",
    "PsbPacket",
    "TscPacket",
    "PipPacket",
    "TipPacket",
    "TntPacket",
    "OvfPacket",
    "encode_packets",
    "parse_stream",
    "ToPAEntry",
    "ToPAOutput",
    "OutputMode",
    "CoreTracer",
    "TraceSegment",
    "VolumeModel",
    "ScannedStream",
    "scan_stream",
    "scan_stream_resilient",
    "SoftwareDecoder",
    "DecodedTrace",
    "DecodedRecord",
    "encode_trace",
    "DecodeCache",
    "binary_fingerprint",
    "process_decode_cache",
]
