"""Simulated hardware-tracing substrate (Intel Processor Trace model).

The paper builds on real IPT: per-core tracers configured through RTIT
MSRs, emitting TNT/TIP/TSC/PIP packets into ToPA-described memory
buffers, decoded offline by libipt against the program binary.  This
package models each piece:

* :mod:`repro.hwtrace.cost` — the control-operation cost model (WRMSR,
  mode switches, PMIs, buffer draining) whose operation *counts* are what
  EXIST optimizes;
* :mod:`repro.hwtrace.msr` — the RTIT register file, enforcing the
  hardware rule that configuration changes require tracing disabled
  (the root cause of per-context-switch control cost, §2.3);
* :mod:`repro.hwtrace.packets` — binary packet encode/parse (objects);
* :mod:`repro.hwtrace.codec` — the vectorized columnar scanner the
  throughput path runs on (no per-packet objects);
* :mod:`repro.hwtrace.topa` — Table-of-Physical-Addresses output buffers
  with stop-on-full (compulsory) and ring semantics;
* :mod:`repro.hwtrace.tracer` — the per-core tracer consuming execution
  slices from the scheduler;
* :mod:`repro.hwtrace.decoder` — the software decoder reconstructing
  control flow from dumped packets plus the binary.
"""

from repro.hwtrace.cache import DecodeCache, binary_fingerprint, process_decode_cache
from repro.hwtrace.codec import ScannedStream, scan_stream, scan_stream_resilient
from repro.hwtrace.cost import CostLedger, CostModel
from repro.hwtrace.decoder import DecodedRecord, DecodedTrace, SoftwareDecoder, encode_trace
from repro.hwtrace.msr import (
    RTIT_CR3_MATCH,
    RTIT_CTL,
    RTIT_OUTPUT_BASE,
    RTIT_OUTPUT_MASK_PTRS,
    RTIT_STATUS,
    CtlBits,
    RtitMsrFile,
    TraceEnabledError,
)
from repro.hwtrace.packets import (
    OvfPacket,
    Packet,
    PipPacket,
    PsbPacket,
    TipPacket,
    TntPacket,
    TscPacket,
    encode_packets,
    parse_stream,
)
from repro.hwtrace.topa import OutputMode, ToPAEntry, ToPAOutput
from repro.hwtrace.tracer import CoreTracer, TraceSegment, VolumeModel

__all__ = [
    "CostModel",
    "CostLedger",
    "RTIT_CTL",
    "RTIT_STATUS",
    "RTIT_OUTPUT_BASE",
    "RTIT_OUTPUT_MASK_PTRS",
    "RTIT_CR3_MATCH",
    "CtlBits",
    "RtitMsrFile",
    "TraceEnabledError",
    "Packet",
    "PsbPacket",
    "TscPacket",
    "PipPacket",
    "TipPacket",
    "TntPacket",
    "OvfPacket",
    "encode_packets",
    "parse_stream",
    "ToPAEntry",
    "ToPAOutput",
    "OutputMode",
    "CoreTracer",
    "TraceSegment",
    "VolumeModel",
    "ScannedStream",
    "scan_stream",
    "scan_stream_resilient",
    "SoftwareDecoder",
    "DecodedTrace",
    "DecodedRecord",
    "encode_trace",
    "DecodeCache",
    "binary_fingerprint",
    "process_decode_cache",
]
