"""Trace packet formats: encode and parse.

A simplified-but-binary Intel PT packet vocabulary.  Formats follow the
SDM's framing closely enough that sizes and stream structure are
realistic; payload semantics are adapted to the simulator's symbolic
control-flow events (each TIP carries a full 6-byte target address; TNT
bytes carry representative conditional-branch bits).

Packet layout summary::

    PSB   02 82 x8                       (16 bytes) stream sync boundary
    OVF   02 F3                          ( 2 bytes) data lost marker
    PIP   02 43 + 6-byte CR3             ( 8 bytes) process context change
    TSC   19 + 7-byte timestamp          ( 8 bytes)
    TIP   0D + 6-byte target address     ( 7 bytes) change-of-flow target
    TNT   one byte, bit0=0: bits 7..2 are branch outcomes, bit1 stop marker

The parser is strict: unknown framing raises :class:`PacketError`, and a
truncated trailing packet is reported, not silently dropped — decode
robustness is part of what the tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

PSB_BYTES = b"\x02\x82" * 8
OVF_BYTES = b"\x02\xf3"
_EXT_PREFIX = 0x02
_EXT_PSB = 0x82
_EXT_OVF = 0xF3
_EXT_PIP = 0x43
_EXT_PTW = 0x12
_TSC_HEADER = 0x19
_TIP_HEADER = 0x0D


class PacketError(ValueError):
    """Malformed packet stream.

    ``offset`` carries the byte offset of the offending packet when the
    error arose while parsing a stream (``None`` for encode-time
    validation errors).  Resilient parsing resynchronizes from it
    structurally instead of string-parsing the message.
    """

    def __init__(self, message: str, offset: Optional[int] = None):
        super().__init__(message)
        self.offset = offset


@dataclass(frozen=True)
class PsbPacket:
    """Synchronization boundary; decoders resync here after data loss."""

    def encode(self) -> bytes:
        """Serialize to the 16-byte PSB pattern."""
        return PSB_BYTES


@dataclass(frozen=True)
class OvfPacket:
    """Overflow: the hardware dropped packets after this point."""

    def encode(self) -> bytes:
        """Serialize to the 2-byte OVF marker."""
        return OVF_BYTES


@dataclass(frozen=True)
class PipPacket:
    """Paging Information Packet: CR3 of the newly scheduled process."""

    cr3: int

    def encode(self) -> bytes:
        """Serialize: extended opcode + 6-byte little-endian CR3."""
        if not 0 <= self.cr3 < (1 << 48):
            raise PacketError(f"CR3 {self.cr3:#x} out of 48-bit range")
        return bytes((_EXT_PREFIX, _EXT_PIP)) + self.cr3.to_bytes(6, "little")


@dataclass(frozen=True)
class TscPacket:
    """Timestamp (ns in this model; TSC ticks on real hardware)."""

    timestamp: int

    def encode(self) -> bytes:
        """Serialize: TSC header + 7-byte little-endian timestamp."""
        if not 0 <= self.timestamp < (1 << 56):
            raise PacketError(f"timestamp {self.timestamp} out of range")
        return bytes((_TSC_HEADER,)) + self.timestamp.to_bytes(7, "little")


@dataclass(frozen=True)
class TipPacket:
    """Target IP: the address control flow transferred to."""

    address: int

    def encode(self) -> bytes:
        """Serialize: TIP header + 6-byte little-endian address."""
        if not 0 <= self.address < (1 << 48):
            raise PacketError(f"address {self.address:#x} out of 48-bit range")
        return bytes((_TIP_HEADER,)) + self.address.to_bytes(6, "little")


@dataclass(frozen=True)
class PtwPacket:
    """PTWRITE payload: a software-chosen 8-byte value in the trace.

    The §6.1 data-flow enhancement: instrumented code can inject variable
    values into the control-flow stream (``02 12`` + 8-byte payload).
    """

    value: int

    def encode(self) -> bytes:
        """Serialize: extended opcode + 8-byte little-endian payload."""
        if not 0 <= self.value < (1 << 64):
            raise PacketError(f"PTWRITE value {self.value} out of 64-bit range")
        return bytes((_EXT_PREFIX, _EXT_PTW)) + self.value.to_bytes(8, "little")


@dataclass(frozen=True)
class TntPacket:
    """Taken/Not-Taken bits for up to 6 conditional branches."""

    bits: Tuple[bool, ...]

    def encode(self) -> bytes:
        """Serialize to one byte: payload bits below a stop marker."""
        if not 1 <= len(self.bits) <= 6:
            raise PacketError("TNT packet carries 1-6 branch bits")
        value = 0
        for i, bit in enumerate(self.bits):
            if bit:
                value |= 1 << (1 + i)
        value |= 1 << (1 + len(self.bits))  # stop marker above last bit
        # bit0 stays 0 to distinguish from TSC/TIP headers (which are odd)
        return bytes((value,))


Packet = Union[
    PsbPacket, OvfPacket, PipPacket, TscPacket, TipPacket, TntPacket, PtwPacket
]


def encode_packets(packets: Sequence[Packet]) -> bytes:
    """Concatenate the binary encodings of ``packets``."""
    return b"".join(p.encode() for p in packets)


def _parse_tnt(byte: int) -> TntPacket:
    # the stop marker is the highest set bit; payload sits below it
    if byte & 0x01:
        raise PacketError(f"not a TNT byte: {byte:#04x}")
    stop = byte.bit_length() - 1
    if stop < 2:
        raise PacketError(f"TNT byte without payload: {byte:#04x}")
    bits = tuple(bool(byte & (1 << (1 + i))) for i in range(stop - 1))
    return TntPacket(bits)


def _parse(data: bytes, start: int) -> "Tuple[List[Packet], Optional[int]]":
    """Parse from ``start``; returns (packets, error_offset-or-None)."""
    packets: List[Packet] = []
    i = start
    n = len(data)
    while i < n:
        b0 = data[i]
        if b0 == _EXT_PREFIX:
            if i + 1 >= n:
                raise PacketError(f"truncated extended packet at offset {i}", i)
            b1 = data[i + 1]
            if b1 == _EXT_PSB:
                if data[i : i + 16] != PSB_BYTES:
                    raise PacketError(f"corrupt PSB at offset {i}", i)
                packets.append(PsbPacket())
                i += 16
            elif b1 == _EXT_OVF:
                packets.append(OvfPacket())
                i += 2
            elif b1 == _EXT_PIP:
                if i + 8 > n:
                    raise PacketError(f"truncated PIP at offset {i}", i)
                cr3 = int.from_bytes(data[i + 2 : i + 8], "little")
                packets.append(PipPacket(cr3))
                i += 8
            elif b1 == _EXT_PTW:
                if i + 10 > n:
                    raise PacketError(f"truncated PTWRITE at offset {i}", i)
                value = int.from_bytes(data[i + 2 : i + 10], "little")
                packets.append(PtwPacket(value))
                i += 10
            else:
                raise PacketError(
                    f"unknown extended opcode {b1:#04x} at offset {i}", i
                )
        elif b0 == _TSC_HEADER:
            if i + 8 > n:
                raise PacketError(f"truncated TSC at offset {i}", i)
            packets.append(TscPacket(int.from_bytes(data[i + 1 : i + 8], "little")))
            i += 8
        elif b0 == _TIP_HEADER:
            if i + 7 > n:
                raise PacketError(f"truncated TIP at offset {i}", i)
            packets.append(TipPacket(int.from_bytes(data[i + 1 : i + 7], "little")))
            i += 7
        elif (b0 & 0x01) == 0 and b0 != 0:
            packets.append(_parse_tnt(b0))
            i += 1
        else:
            raise PacketError(
                f"unrecognized packet header {b0:#04x} at offset {i}", i
            )
    return packets, None


def parse_stream(data: bytes) -> List[Packet]:
    """Parse a packet stream; raises :class:`PacketError` on bad framing."""
    packets, _ = _parse(data, 0)
    return packets


def parse_stream_resilient(data: bytes) -> "Tuple[List[Packet], int]":
    """Parse with PSB resynchronization on corruption.

    Real decoders never give up on a damaged stream: on a framing error
    they keep everything parsed so far, scan forward to the next PSB (the
    sync boundary emitted every 4 KiB), and resume.  Returns
    (packets, resync_count).
    """
    packets: List[Packet] = []
    resyncs = 0
    offset = 0
    while offset < len(data):
        chunk, error_offset = _parse_or_error(data, offset)
        packets.extend(chunk)
        if error_offset is None:
            break
        resyncs += 1
        next_psb = data.find(PSB_BYTES, error_offset + 1)
        if next_psb == -1:
            break
        offset = next_psb
    return packets, resyncs


def _parse_or_error(data: bytes, start: int):
    """Run :func:`_parse` but convert the exception into an offset."""
    try:
        chunk, _ = _parse(data, start)
    except PacketError as exc:
        # the exception carries the offending packet's buffer offset
        error_offset = exc.offset if exc.offset is not None else start
        # reparse the clean prefix only
        clean, _ = _parse(data[:error_offset], start)
        return clean, error_offset
    return chunk, None
