"""Cost model of tracing control operations.

The paper's core observation (§2.3) is that hardware tracing itself is
nearly free — the overhead of tracing *systems* comes from control
operations: serializing WRMSRs that must run with tracing disabled,
user/kernel mode switches, PMI-style interrupts for samplers, and the
memory/file traffic of draining trace buffers.  This module centralizes
those constants (calibrated against the paper's measured baseline
overheads; see EXPERIMENTS.md "Calibration") and provides the ledger the
tracing schemes charge them through, so every experiment can report *why*
a scheme was slow, not just that it was.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.util.units import MIB


@dataclass(frozen=True)
class CostModel:
    """Nanosecond costs of the primitive operations."""

    #: one serializing WRMSR to an RTIT register
    wrmsr_ns: int = 1_200
    #: one RDMSR
    rdmsr_ns: int = 400
    #: one user<->kernel mode switch (EXIST avoids these by staying in
    #: kernel mode; conventional controllers pay them per control action)
    mode_switch_ns: int = 400
    #: one sampling interrupt incl. register/stack capture (perf -F mode)
    pmi_ns: int = 8_000
    #: executing an injected tracepoint hook (EXIST's sched_switch hook)
    hook_ns: int = 150
    #: writing the 24-byte context-switch five-tuple record
    sidecar_record_ns: int = 60
    #: an eBPF probe on a tracepoint (map update + ring-buffer output)
    ebpf_probe_ns: int = 1_200
    #: bpftrace's always-on instrumentation machinery, as a CPU fraction
    #: charged while the traced workload runs (userspace map polling,
    #: kprobe trampolines) — calibrated to its measured SPEC overhead
    ebpf_flat_tax: float = 0.030
    #: draining one MiB of trace data out of the ToPA buffer to the perf
    #: ring / file (memcpy + I/O), charged to the traced core
    drain_per_mib_ns: int = 350_000
    #: per-real-branch slowdown while a PT tracer is enabled on the core
    pt_branch_penalty_ns: float = 0.02
    #: memory-bandwidth interference of perf's continuous trace draining
    #: on *co-located* threads (the cascaded degradation of Figure 3a's
    #: innocent neighbour); EXIST avoids it by not draining during tracing
    drain_interference_tax: float = 0.012
    #: arming/cancelling a high-resolution timer
    hrt_ns: int = 500

    def drain_cost(self, n_bytes: float) -> int:
        """Cost of draining ``n_bytes`` of trace data."""
        return int(n_bytes / MIB * self.drain_per_mib_ns)

    def pt_tax(self, branch_per_instr: float, nominal_ips: float) -> float:
        """CPU fraction lost to packet generation while PT is enabled.

        Branch-density dependent: ``branches/ns * penalty`` — the source
        of EXIST's 0.4–1.5% per-workload spread in Figure 13.
        """
        return branch_per_instr * nominal_ips * self.pt_branch_penalty_ns


class CostLedger:
    """Counts and nanosecond totals per operation category.

    Schemes charge every control action here; benchmarks read the ledger
    to reproduce the paper's operation-count analyses (Figure 4, §3.2's
    O(#sched) vs O(#core) argument).
    """

    def __init__(self, model: CostModel):
        self.model = model
        self.counts: Dict[str, int] = {}
        self.total_ns: Dict[str, int] = {}

    def charge(self, category: str, cost_ns: int, count: int = 1) -> int:
        """Record ``count`` operations totalling ``cost_ns``; returns cost."""
        self.counts[category] = self.counts.get(category, 0) + count
        self.total_ns[category] = self.total_ns.get(category, 0) + int(cost_ns)
        return int(cost_ns)

    def charge_wrmsr(self, n: int = 1) -> int:
        """Charge ``n`` serializing WRMSR operations."""
        return self.charge("wrmsr", self.model.wrmsr_ns * n, n)

    def charge_rdmsr(self, n: int = 1) -> int:
        """Charge ``n`` RDMSR operations."""
        return self.charge("rdmsr", self.model.rdmsr_ns * n, n)

    def charge_mode_switch(self, n: int = 1) -> int:
        """Charge ``n`` user/kernel mode switches."""
        return self.charge("mode_switch", self.model.mode_switch_ns * n, n)

    def charge_hook(self) -> int:
        """Charge one tracepoint-hook execution."""
        return self.charge("hook", self.model.hook_ns)

    def charge_sidecar(self) -> int:
        """Charge one five-tuple sidecar record write."""
        return self.charge("sidecar_record", self.model.sidecar_record_ns)

    def charge_hrt(self) -> int:
        """Charge one high-resolution-timer arm/cancel."""
        return self.charge("hrt", self.model.hrt_ns)

    @property
    def grand_total_ns(self) -> int:
        return sum(self.total_ns.values())

    def count(self, category: str) -> int:
        """Operations charged under ``category`` so far."""
        return self.counts.get(category, 0)

    def snapshot(self) -> Dict[str, int]:
        """Copy of per-category counts (for before/after comparisons)."""
        return dict(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{k}={v}" for k, v in sorted(self.counts.items())
        )
        return f"CostLedger({parts}; total={self.grand_total_ns}ns)"
