"""RTIT model-specific registers.

Models the Intel PT register interface (SDM Vol 3, ch. 33) at the level
the paper's argument needs: the ``IA32_RTIT_CTL`` bit layout, the output
base/mask pair, the CR3 match register — and crucially the hardware rule
that **configuration may only change while TraceEn is clear**.  Violating
it raises :class:`TraceEnabledError`, which is why every conventional
controller pays a disable/modify/enable WRMSR triplet per adjustment
(§2.3) and why frequent unsafe MSR writes are a cluster stability risk.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.hwtrace.cost import CostLedger

# MSR addresses (Intel SDM)
RTIT_OUTPUT_BASE = 0x560
RTIT_OUTPUT_MASK_PTRS = 0x561
RTIT_CTL = 0x570
RTIT_STATUS = 0x571
RTIT_CR3_MATCH = 0x572

_RTIT_ADDRESSES = {
    RTIT_OUTPUT_BASE,
    RTIT_OUTPUT_MASK_PTRS,
    RTIT_CTL,
    RTIT_STATUS,
    RTIT_CR3_MATCH,
}


class CtlBits(enum.IntFlag):
    """IA32_RTIT_CTL bit fields (subset used by EXIST, §4)."""

    TRACE_EN = 1 << 0
    CYC_EN = 1 << 1
    OS = 1 << 2
    USER = 1 << 3
    CR3_FILTER = 1 << 7
    TOPA = 1 << 8
    MTC_EN = 1 << 9
    TSC_EN = 1 << 10
    DIS_RETC = 1 << 11
    BRANCH_EN = 1 << 13

    @classmethod
    def exist_default(cls) -> "CtlBits":
        """The configuration the paper's §4 sets: COFI tracing with
        cycle-accurate packets, CR3 filtering and ToPA output."""
        return (
            cls.BRANCH_EN | cls.CYC_EN | cls.TSC_EN | cls.CR3_FILTER
            | cls.TOPA | cls.USER | cls.OS
        )


class TraceEnabledError(RuntimeError):
    """Raised when software modifies trace configuration with TraceEn set."""


class RtitMsrFile:
    """Per-core RTIT register file with hardware write rules.

    Every read/write is charged to the supplied :class:`CostLedger`, so
    operation counts fall out of simply *using* the registers the way a
    driver would.

    ``hot_switching`` models the §6.1 hardware enhancement the paper
    proposes: configuration changes allowed while TraceEn is set, which
    would spare conventional controllers the disable/modify/enable
    triplet.  Off by default (today's hardware).
    """

    def __init__(self, core_id: int, ledger: CostLedger, hot_switching: bool = False):
        self.core_id = core_id
        self._ledger = ledger
        self.hot_switching = hot_switching
        self._values: Dict[int, int] = {addr: 0 for addr in _RTIT_ADDRESSES}
        self.write_count = 0
        self.read_count = 0

    # -- raw access ----------------------------------------------------------

    def read(self, address: int) -> int:
        """RDMSR: read a register (charged to the ledger)."""
        if address not in _RTIT_ADDRESSES:
            raise ValueError(f"unknown RTIT MSR {address:#x}")
        self.read_count += 1
        self._ledger.charge_rdmsr()
        return self._values[address]

    def write(self, address: int, value: int) -> None:
        """WRMSR: write a register, enforcing the TraceEn rules."""
        if address not in _RTIT_ADDRESSES:
            raise ValueError(f"unknown RTIT MSR {address:#x}")
        trace_enabled = bool(self._values[RTIT_CTL] & CtlBits.TRACE_EN)
        if trace_enabled and not self.hot_switching:
            if address != RTIT_CTL:
                raise TraceEnabledError(
                    f"write to MSR {address:#x} requires TraceEn=0"
                )
            # the only legal enabled-state change is clearing TraceEn
            # without touching other CTL bits
            if (value | CtlBits.TRACE_EN) != self._values[RTIT_CTL]:
                raise TraceEnabledError(
                    "CTL reconfiguration requires TraceEn=0 "
                    "(disable tracing first)"
                )
        self.write_count += 1
        self._ledger.charge_wrmsr()
        self._values[address] = value

    # -- typed helpers ---------------------------------------------------------

    @property
    def ctl(self) -> CtlBits:
        return CtlBits(self._values[RTIT_CTL])

    @property
    def trace_enabled(self) -> bool:
        return bool(self._values[RTIT_CTL] & CtlBits.TRACE_EN)

    @property
    def cr3_match(self) -> int:
        return self._values[RTIT_CR3_MATCH]

    @property
    def output_base(self) -> int:
        return self._values[RTIT_OUTPUT_BASE]

    def configure(
        self,
        flags: CtlBits,
        cr3_match: Optional[int] = None,
        output_base: Optional[int] = None,
    ) -> None:
        """Program configuration registers (requires tracing disabled).

        Each touched register is one WRMSR; ``flags`` must not include
        TRACE_EN — enabling is a separate, deliberate step.
        """
        if flags & CtlBits.TRACE_EN:
            raise ValueError("use enable() to set TraceEn")
        if cr3_match is not None:
            self.write(RTIT_CR3_MATCH, cr3_match)
        if output_base is not None:
            self.write(RTIT_OUTPUT_BASE, output_base)
        self.write(RTIT_CTL, int(flags))

    def enable(self) -> None:
        """Set TraceEn (one WRMSR); idempotent enables still pay the op."""
        self.write(RTIT_CTL, self._values[RTIT_CTL] | CtlBits.TRACE_EN)

    def disable(self) -> None:
        """Clear TraceEn (one WRMSR)."""
        current = self._values[RTIT_CTL]
        if not current & CtlBits.TRACE_EN:
            # still a WRMSR on real hardware if software writes anyway;
            # model drivers as checking first, so this is free
            return
        self.write(RTIT_CTL, current & ~int(CtlBits.TRACE_EN))
