"""ARM Embedded Trace Macrocell (ETM) backend.

The paper's §6.2 first future-work item: extend EXIST beyond Intel PT to
ARM (ETM) and RISC-V processors — "the efficient abstraction designs can
be easily extended to other platforms".  This module demonstrates that:
an ETM-flavoured per-core tracer exposing the same control surface the
facility drives, differing exactly where the architectures differ:

* configuration through memory-mapped trace registers (TRCPRGCTLR,
  TRCCONFIGR, TRCCIDCVR...) behind an OS Lock, not MSRs — cheaper
  individual writes, but an unlock/lock bracket around reprogramming;
* process filtering by context ID comparator (TRCCIDCVR) instead of CR3;
* a denser packet encoding (ETM compresses harder than IPT: Atom
  packets pack more branches per byte).

:class:`EtmCoreTracer` is drop-in compatible with
:class:`~repro.hwtrace.tracer.CoreTracer` (the facility selects the
backend by name), so every EXIST mechanism — OTC's enable-on-first-
schedule-in, UMA's buffers, RCO — runs unchanged on the ARM model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hwtrace.cost import CostLedger
from repro.hwtrace.topa import ToPAOutput
from repro.hwtrace.tracer import TraceSegment, VolumeModel
from repro.program.path import PathModel

# trace-unit register offsets (CoreSight ETMv4)
TRCPRGCTLR = 0x004  # programming control: bit0 = trace enable
TRCCONFIGR = 0x010  # config: branch broadcast, cycle counting...
TRCCIDCVR0 = 0x650  # context-ID comparator value
TRCOSLAR = 0x300  # OS lock access


class EtmLockError(RuntimeError):
    """Raised when programming registers are written while locked/enabled."""


@dataclass(frozen=True)
class EtmVolumeModel(VolumeModel):
    """ETM packs branches more densely than IPT (Atom packet runs)."""

    tnt_bytes_per_branch: float = 1.0 / 8.0  # Atom packets: ~8 branches/byte
    tip_bytes: float = 3.5  # Address packets, exception-level compressed


class EtmRegisterFile:
    """Memory-mapped trace registers with ETM programming rules.

    Reprogramming requires the trace unit disabled *and* the OS lock
    open; individual MMIO writes are cheaper than serializing WRMSRs, but
    the unlock/program/lock bracket adds fixed overhead per control
    action — a different cost shape, same O(operations) structure.
    """

    MMIO_WRITE_NS = 300
    UNLOCK_NS = 500

    def __init__(self, core_id: int, ledger: CostLedger):
        self.core_id = core_id
        self._ledger = ledger
        self._regs: Dict[int, int] = {
            TRCPRGCTLR: 0, TRCCONFIGR: 0, TRCCIDCVR0: 0, TRCOSLAR: 1
        }
        self.write_count = 0

    @property
    def trace_enabled(self) -> bool:
        return bool(self._regs[TRCPRGCTLR] & 1)

    @property
    def os_locked(self) -> bool:
        return bool(self._regs[TRCOSLAR])

    @property
    def cr3_match(self) -> int:
        """Context-ID comparator (the CR3-filter equivalent)."""
        return self._regs[TRCCIDCVR0]

    def write(self, offset: int, value: int) -> None:
        """MMIO register write, enforcing lock/enable rules."""
        if offset not in self._regs:
            raise ValueError(f"unknown ETM register {offset:#x}")
        if offset == TRCOSLAR:
            self._ledger.charge("etm_unlock", self.UNLOCK_NS)
            self._regs[offset] = value
            self.write_count += 1
            return
        if offset != TRCPRGCTLR:
            if self.trace_enabled:
                raise EtmLockError(
                    f"ETM register {offset:#x} write requires trace disabled"
                )
            if self.os_locked:
                raise EtmLockError("ETM programming requires the OS lock open")
        self._ledger.charge("etm_mmio", self.MMIO_WRITE_NS)
        self._regs[offset] = value
        self.write_count += 1

    def configure(
        self,
        flags: object = None,
        cr3_match: Optional[int] = None,
        output_base: Optional[int] = None,
    ) -> None:
        """CoreTracer-compatible configuration entry point."""
        if self.trace_enabled:
            raise EtmLockError("configure requires trace disabled")
        self.write(TRCOSLAR, 0)  # unlock
        self.write(TRCCONFIGR, 0b1011)  # branch broadcast + cycle count
        if cr3_match is not None:
            self.write(TRCCIDCVR0, cr3_match)
        self.write(TRCOSLAR, 1)  # relock

    def enable(self) -> None:
        """Start tracing (TRCPRGCTLR.EN)."""
        self._ledger.charge("etm_mmio", self.MMIO_WRITE_NS)
        self._regs[TRCPRGCTLR] |= 1
        self.write_count += 1

    def disable(self) -> None:
        """Stop tracing; a no-op (and free) when already stopped."""
        if not self.trace_enabled:
            return
        self._ledger.charge("etm_mmio", self.MMIO_WRITE_NS)
        self._regs[TRCPRGCTLR] &= ~1
        self.write_count += 1


class EtmCoreTracer:
    """Per-core ETM trace unit, drop-in for :class:`CoreTracer`."""

    def __init__(
        self,
        core_id: int,
        ledger: CostLedger,
        volume: Optional[VolumeModel] = None,
        hot_switching: bool = False,
    ):
        self.core_id = core_id
        self.msr = EtmRegisterFile(core_id, ledger)  # facility-facing name
        self.volume = volume or EtmVolumeModel()
        self.output: Optional[ToPAOutput] = None
        self.segments: List[TraceSegment] = []
        self.filtered_slices = 0
        self.overflow_slices = 0

    # -- facility-facing surface (mirrors CoreTracer) -------------------------

    def attach_output(self, output: ToPAOutput) -> None:
        """Point the trace unit at an ETR buffer (our ToPA stand-in)."""
        if self.msr.trace_enabled:
            raise EtmLockError("ETR reprogramming requires trace disabled")
        self.output = output

    @property
    def enabled(self) -> bool:
        return self.msr.trace_enabled

    @property
    def cr3_filtering(self) -> bool:
        return self.msr.cr3_match != 0

    def observe_slice(
        self,
        pid: int,
        tid: int,
        cr3: int,
        t_start: int,
        t_end: int,
        event_start: int,
        event_end: int,
        branches: int,
        path_model: PathModel,
    ) -> Optional[TraceSegment]:
        """Consider one slice for capture (same contract as CoreTracer)."""
        if not self.enabled:
            return None
        if self.cr3_filtering and self.msr.cr3_match not in (0, cr3):
            self.filtered_slices += 1
            return None
        if self.output is None:
            raise RuntimeError(f"ETM {self.core_id} enabled without ETR buffer")
        offered = float(
            math.ceil(self.volume.slice_bytes(branches, path_model.indirect_fraction))
        )
        accepted = self.output.write(offered)
        n_events = event_end - event_start
        if accepted <= 0:
            self.overflow_slices += 1
            return None
        captured_end = (
            event_end
            if accepted >= offered
            else event_start + int(n_events * (accepted / offered))
        )
        segment = TraceSegment(
            core_id=self.core_id, pid=pid, tid=tid, cr3=cr3,
            t_start=t_start, t_end=t_end,
            event_start=event_start, event_end=event_end,
            captured_event_end=captured_end,
            bytes_offered=offered, bytes_accepted=accepted,
            path_model=path_model,
        )
        self.segments.append(segment)
        return segment

    def take_segments(self) -> List[TraceSegment]:
        """Remove and return all captured segments (trace dump)."""
        segments, self.segments = self.segments, []
        return segments

    def reset(self) -> None:
        """Clear capture state for a new tracing period."""
        self.segments.clear()
        self.filtered_slices = 0
        self.overflow_slices = 0
        if self.output is not None:
            self.output.reset()

    @property
    def bytes_captured(self) -> float:
        return sum(s.bytes_accepted for s in self.segments)
