"""Last Branch Record (LBR) model.

The paper positions IPT against its predecessors (§6.1): LBR keeps only
the 16 or 32 most recent branch pairs in a register stack — near-zero
overhead, but coverage limited to the last handful of control transfers,
which is why it cannot support intra-service *tracing* (it is what
samplers attach to a PMI for short call-chain context).

Modeled faithfully: a fixed-depth stack of (from, to) block transitions,
fed from the same symbolic event stream as the tracers, snapshotable at
any instant (the PMI use case).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List

from repro.program.path import PathModel


@dataclass(frozen=True)
class BranchPair:
    """One LBR entry: a (source block, target block) transition."""

    from_block: int
    to_block: int


class LastBranchRecord:
    """A fixed-depth last-branch stack (Skylake: 32 entries).

    ``record_range`` folds a symbolic event range in; only the newest
    ``depth`` transitions survive — O(1) state regardless of how much
    execution passed, which is both LBR's virtue and its limitation.
    """

    def __init__(self, depth: int = 32):
        if depth not in (16, 32):
            raise ValueError("LBR depth is 16 or 32 on real hardware")
        self.depth = depth
        self._stack: Deque[BranchPair] = deque(maxlen=depth)
        self.total_recorded = 0

    def record_range(
        self, path: PathModel, event_start: int, event_end: int
    ) -> None:
        """Fold the transitions of [event_start, event_end) into the stack.

        Only the last ``depth`` transitions can matter, so arbitrarily
        long ranges cost O(depth).
        """
        if event_end <= event_start:
            return
        span = event_end - event_start
        self.total_recorded += span
        keep_from = max(event_start, event_end - (self.depth + 1))
        events = path.events(keep_from, event_end).tolist()
        for from_block, to_block in zip(events, events[1:]):
            self._stack.append(BranchPair(int(from_block), int(to_block)))

    def snapshot(self) -> List[BranchPair]:
        """The PMI-time read-out: newest last."""
        return list(self._stack)

    @property
    def entries(self) -> int:
        return len(self._stack)

    def coverage_fraction(self) -> float:
        """How much of everything recorded is still visible (tiny)."""
        if self.total_recorded == 0:
            return 1.0
        return min(1.0, self.entries / self.total_recorded)

    def clear(self) -> None:
        """Empty the stack and the recording counter."""
        self._stack.clear()
        self.total_recorded = 0
